// Package parallel provides the shared-work infrastructure of the
// back-end: a bounded worker pool, deterministic fan-out helpers
// (input-ordered results, first-error-by-index semantics), a
// synthesis memo cache with single-flight computation, and per-stage
// timing counters.
//
// The pool admits *leaf* units of work (one controller synthesis, one
// clustering legality probe, one conformance pair, one benchmark
// simulation). Composite tasks — a whole flow arm, a whole design —
// run as plain goroutines via All and only their leaves take pool
// slots, so nested fan-out can never deadlock the pool.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a counting semaphore bounding concurrent leaf work.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool admitting up to workers concurrent units;
// workers <= 0 means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the process-wide pool, sized to GOMAXPROCS. Callers
// that pass a nil *Pool to Map share this global budget.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// Workers returns the pool's admission bound.
func (p *Pool) Workers() int { return cap(p.sem) }

func (p *Pool) acquire() { p.sem <- struct{}{} }
func (p *Pool) release() { <-p.sem }

// Run executes one leaf unit of work under pool admission.
func (p *Pool) Run(f func() error) error {
	p.acquire()
	defer p.release()
	return f()
}

// Map runs f(0..n-1) with each call admitted through the pool (nil =
// the Default pool), returning results in input order. Error semantics
// are deterministic and match a sequential loop: the returned error is
// the one from the lowest failing index. Once an item fails, items with
// higher indices may be skipped (their result slots keep zero values);
// items with lower indices always run, so the winning error never
// depends on scheduling.
func Map[T any](p *Pool, n int, f func(int) (T, error)) ([]T, error) {
	if p == nil {
		p = Default()
	}
	out := make([]T, n)
	errs := make([]error, n)
	var minErr atomic.Int64
	minErr.Store(int64(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.acquire()
			defer p.release()
			if int64(i) > minErr.Load() {
				return // a lower index already failed; this result cannot matter
			}
			v, err := f(i)
			if err != nil {
				errs[i] = err
				for {
					cur := minErr.Load()
					if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
				return
			}
			out[i] = v
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// All runs the thunks concurrently WITHOUT pool admission — they are
// composite tasks whose leaves are pool-gated — and returns the first
// error by index (same deterministic semantics as Map).
func All(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Counter is an atomic event counter.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Package parallel provides the shared-work infrastructure of the
// back-end: a bounded worker pool, deterministic fan-out helpers
// (input-ordered results, first-error-by-index semantics), a
// synthesis memo cache with single-flight computation, and per-stage
// timing counters.
//
// The pool admits *leaf* units of work (one controller synthesis, one
// clustering legality probe, one conformance pair, one benchmark
// simulation). Composite tasks — a whole flow arm, a whole design —
// run as plain goroutines via All and only their leaves take pool
// slots, so nested fan-out can never deadlock the pool.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a counting semaphore bounding concurrent leaf work.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool admitting up to workers concurrent units;
// workers <= 0 means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the process-wide pool, sized to GOMAXPROCS. Callers
// that pass a nil *Pool to Map share this global budget.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// Workers returns the pool's admission bound.
func (p *Pool) Workers() int { return cap(p.sem) }

func (p *Pool) acquire() { p.sem <- struct{}{} }
func (p *Pool) release() { <-p.sem }

// Acquire takes one pool slot, or gives up when the context is
// cancelled first, returning the context's error. A nil error means the
// caller holds a slot and must release it.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run executes one leaf unit of work under pool admission.
func (p *Pool) Run(f func() error) error {
	return p.RunCtx(context.Background(), f)
}

// RunCtx executes one leaf unit of work under pool admission,
// abandoning it (without running f) when the context is cancelled
// while waiting for a slot or before f starts. A running f is not
// interrupted; long leaves that want finer-grained cancellation must
// check ctx themselves.
func (p *Pool) RunCtx(ctx context.Context, f func() error) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	if err := ctx.Err(); err != nil {
		return err
	}
	return f()
}

// Map runs f(0..n-1) with each call admitted through the pool (nil =
// the Default pool), returning results in input order. Error semantics
// are deterministic and match a sequential loop: the returned error is
// the one from the lowest failing index. Once an item fails, items with
// higher indices may be skipped (their result slots keep zero values);
// items with lower indices always run, so the winning error never
// depends on scheduling.
func Map[T any](p *Pool, n int, f func(int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), p, n, f)
}

// MapCtx is Map with cancellation: items still waiting for a pool slot
// when the context is cancelled are skipped and fail with the context's
// error, which then propagates under the same lowest-failing-index
// rule. Items whose f already started run to completion.
func MapCtx[T any](ctx context.Context, p *Pool, n int, f func(int) (T, error)) ([]T, error) {
	if p == nil {
		p = Default()
	}
	out := make([]T, n)
	errs := make([]error, n)
	var minErr atomic.Int64
	minErr.Store(int64(n))
	fail := func(i int, err error) {
		errs[i] = err
		for {
			cur := minErr.Load()
			if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := p.Acquire(ctx); err != nil {
				fail(i, err)
				return
			}
			defer p.release()
			if int64(i) > minErr.Load() {
				return // a lower index already failed; this result cannot matter
			}
			if err := ctx.Err(); err != nil {
				fail(i, err)
				return
			}
			v, err := f(i)
			if err != nil {
				fail(i, err)
				return
			}
			out[i] = v
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// MapAllCtx runs f(0..n-1) concurrently WITHOUT pool admission — the
// items are composite tasks whose leaves are pool-gated — returning
// results in input order. Error semantics match MapCtx: the returned
// error is the one from the lowest failing index, and items observing
// an already-failed lower index may be skipped. Use it to fan out
// work that itself acquires pool slots (a controller synthesis whose
// per-function minimizations are the leaves); running such composites
// under Map would hold a slot while waiting for another and could
// deadlock the pool.
func MapAllCtx[T any](ctx context.Context, n int, f func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var minErr atomic.Int64
	minErr.Store(int64(n))
	fail := func(i int, err error) {
		errs[i] = err
		for {
			cur := minErr.Load()
			if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if int64(i) > minErr.Load() {
				return // a lower index already failed; this result cannot matter
			}
			if err := ctx.Err(); err != nil {
				fail(i, err)
				return
			}
			v, err := f(i)
			if err != nil {
				fail(i, err)
				return
			}
			out[i] = v
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// All runs the thunks concurrently WITHOUT pool admission — they are
// composite tasks whose leaves are pool-gated — and returns the first
// error by index (same deterministic semantics as Map).
func All(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Counter is an atomic event counter.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Go launches fn on its own goroutine. It is the blessed escape hatch
// for fire-and-forget work (signal watchers, long-lived workers) that
// genuinely does not fit Map/All: the gostmt vet pass forbids naked go
// statements outside this package, so every spawn site is greppable as
// a parallel.Go call. The caller still owns fn's lifecycle — pair it
// with a WaitGroup or context as usual.
func Go(fn func()) {
	go fn()
}

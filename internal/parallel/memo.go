package parallel

import "sync"

// Memo is a concurrency-safe, single-flight memo cache: for each key
// the compute function runs exactly once, no matter how many goroutines
// ask concurrently; later and concurrent callers share the first
// caller's result (value or error). It backs the canonical-form
// synthesis cache of the flow.
type Memo[V any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[V]
	hits    Counter
	misses  Counter
}

type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the memoized value for key, computing it with f on first
// use. The second result reports whether the value was served from the
// cache (true for every caller except the one that ran f).
func (m *Memo[V]) Do(key string, f func() (V, error)) (V, bool, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = map[string]*memoEntry[V]{}
	}
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		m.hits.Add(1)
		return e.val, true, e.err
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()
	m.misses.Add(1)
	e.val, e.err = f()
	close(e.done)
	return e.val, false, e.err
}

// Forget drops the entry for key, so the next Do computes afresh. It
// is used to un-memoize results that are not deterministic properties
// of the key — e.g. a computation that failed only because its job was
// cancelled. Callers already waiting on the entry still receive the
// old result; only future Do calls recompute.
func (m *Memo[V]) Forget(key string) {
	m.mu.Lock()
	delete(m.entries, key)
	m.mu.Unlock()
}

// Hits returns how many calls were served from the cache.
func (m *Memo[V]) Hits() int64 { return m.hits.Load() }

// Misses returns how many calls ran the compute function.
func (m *Memo[V]) Misses() int64 { return m.misses.Load() }

// Len returns the number of cached keys.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndResults(t *testing.T) {
	p := NewPool(4)
	out, err := Map(p, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	_, err := Map(p, 50, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", peak.Load(), workers)
	}
}

// The returned error must be the lowest-index failure, no matter how
// the scheduler interleaves the items.
func TestMapFirstErrorByIndex(t *testing.T) {
	p := NewPool(8)
	for trial := 0; trial < 20; trial++ {
		_, err := Map(p, 64, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("trial %d: got error %v, want item 3 failed", trial, err)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestAllFirstErrorByIndex(t *testing.T) {
	err := All(
		func() error { time.Sleep(5 * time.Millisecond); return errors.New("first") },
		func() error { return errors.New("second") },
	)
	if err == nil || err.Error() != "first" {
		t.Fatalf("got %v, want first", err)
	}
	if err := All(func() error { return nil }, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// Nested fan-out through the same 1-slot pool must not deadlock as long
// as only leaves take slots (All for composites, Map for leaves).
func TestCompositeLeafNoDeadlock(t *testing.T) {
	p := NewPool(1)
	err := All(
		func() error {
			_, err := Map(p, 5, func(i int) (int, error) { return i, nil })
			return err
		},
		func() error {
			_, err := Map(p, 5, func(i int) (int, error) { return i, nil })
			return err
		},
	)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[int]
	var computed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := m.Do("k", func() (int, error) {
				computed.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", computed.Load())
	}
	if m.Misses() != 1 || m.Hits() != 31 {
		t.Fatalf("hits %d misses %d, want 31/1", m.Hits(), m.Misses())
	}
}

func TestMemoErrorShared(t *testing.T) {
	var m Memo[int]
	boom := errors.New("boom")
	_, _, err := m.Do("k", func() (int, error) { return 0, boom })
	if err != boom {
		t.Fatal(err)
	}
	_, hit, err := m.Do("k", func() (int, error) { return 1, nil })
	if !hit || err != boom {
		t.Fatalf("second call: hit=%v err=%v, want cached error", hit, err)
	}
}

func TestTimings(t *testing.T) {
	var tm Timings
	tm.Observe("compile", 2*time.Millisecond)
	tm.Observe("compile", 3*time.Millisecond)
	tm.Time("map", func() {})
	snap := tm.Snapshot()
	if s := snap["compile"]; s.Count != 2 || s.Total != 5*time.Millisecond {
		t.Fatalf("compile stage %+v", s)
	}
	if s := snap["map"]; s.Count != 1 {
		t.Fatalf("map stage %+v", s)
	}
	var nilT *Timings
	nilT.Observe("x", time.Second) // must not panic
	nilT.Time("y", func() {})
	if nilT.String() != "" {
		t.Fatal("nil Timings should render empty")
	}
}

func TestMapCtxCancelAbandonsQueuedItems(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64
	done := make(chan struct{})
	var mapErr error
	go func() {
		defer close(done)
		_, mapErr = MapCtx(ctx, p, 50, func(i int) (int, error) {
			ran.Add(1)
			if i == 0 {
				close(started)
				<-release
			}
			return i, nil
		})
	}()
	<-started // item 0 occupies the only slot
	cancel()  // items 1..49 still waiting for a slot must be abandoned
	close(release)
	<-done
	if !errors.Is(mapErr, context.Canceled) {
		t.Fatalf("MapCtx error = %v, want context.Canceled", mapErr)
	}
	if n := ran.Load(); n >= 50 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestRunCtxCancelled(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.RunCtx(ctx, func() error {
		t.Fatal("leaf ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
}

func TestMemoForget(t *testing.T) {
	var m Memo[int]
	var runs atomic.Int64
	compute := func() (int, error) { runs.Add(1); return int(runs.Load()), nil }
	if v, _, _ := m.Do("k", compute); v != 1 {
		t.Fatalf("first Do = %d, want 1", v)
	}
	m.Forget("k")
	v, hit, _ := m.Do("k", compute)
	if hit || v != 2 {
		t.Fatalf("Do after Forget: hit=%v v=%d, want fresh recompute", hit, v)
	}
}

func TestTimingsNotify(t *testing.T) {
	var tm Timings
	type obs struct {
		stage string
		d     time.Duration
		s     Stage
	}
	var mu sync.Mutex
	var got []obs
	tm.Notify(func(stage string, d time.Duration, s Stage) {
		mu.Lock()
		got = append(got, obs{stage, d, s})
		mu.Unlock()
	})
	tm.Observe("compile", 2*time.Millisecond)
	tm.Observe("compile", 3*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("got %d notifications, want 2", len(got))
	}
	if got[1].d != 3*time.Millisecond || got[1].s.Count != 2 || got[1].s.Total != 5*time.Millisecond {
		t.Fatalf("second notification %+v", got[1])
	}
	var nilT *Timings
	nilT.Notify(func(string, time.Duration, Stage) {}) // must not panic
}

package parallel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage accumulates wall-clock spent in one pipeline stage.
type Stage struct {
	Count int64
	Total time.Duration
}

// Timings collects per-stage timing counters across goroutines. The
// zero value is ready to use; a nil *Timings discards observations, so
// instrumented code needs no conditionals.
type Timings struct {
	mu     sync.Mutex
	stages map[string]Stage
	notify []func(stage string, d time.Duration, s Stage)
}

// Notify registers fn to run after every Observe, with the stage name,
// the duration of the observed unit, and the stage's updated
// cumulative counters. It is how live consumers (the server's progress
// streams and its aggregate metrics) see stage completions as they
// happen. Callbacks run on the observing goroutine, outside the
// Timings lock, and must be fast and concurrency-safe.
func (t *Timings) Notify(fn func(stage string, d time.Duration, s Stage)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.notify = append(t.notify, fn)
	t.mu.Unlock()
}

// Observe adds one completed unit of the named stage.
func (t *Timings) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.stages == nil {
		t.stages = map[string]Stage{}
	}
	s := t.stages[stage]
	s.Count++
	s.Total += d
	t.stages[stage] = s
	fns := t.notify
	t.mu.Unlock()
	for _, fn := range fns {
		fn(stage, d, s)
	}
}

// Time runs f and charges its duration to the named stage.
func (t *Timings) Time(stage string, f func()) {
	if t == nil {
		f()
		return
	}
	start := time.Now()
	f()
	t.Observe(stage, time.Since(start))
}

// Snapshot returns a copy of the accumulated stages.
func (t *Timings) Snapshot() map[string]Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]Stage, len(t.stages))
	for k, v := range t.stages {
		out[k] = v
	}
	return out
}

// String renders the stages sorted by name, one per line.
func (t *Timings) String() string {
	snap := t.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		s := snap[k]
		fmt.Fprintf(&sb, "%-12s %6d calls %12s total %12s avg\n",
			k, s.Count, s.Total.Round(time.Microsecond),
			(s.Total / time.Duration(max64(s.Count, 1))).Round(time.Microsecond))
	}
	return sb.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Package hclib provides hand-optimized gate-level implementations of
// the standard control handshake components — the counterpart of
// Balsa's manually designed component library, which the paper uses as
// the unoptimized baseline ("the original Balsa control components are
// manually designed and they have highly-optimized implementations",
// Section 6).
//
// Each circuit implements exactly the component's CH/Burst-Mode
// protocol (Fig 3); the package tests verify every template against
// the compiled specification with a gate-level spec driver.
//
// Circuits (four-phase, broad handshakes):
//
//	sequencer-n:  a chain of Muller C-elements; stage i issues its
//	              request while the previous stage's C-element holds
//	              the phase (the classical S-element cascade):
//	                 y_i  = C(Ai_a, e_i)
//	                 Ai_r = e_i & !y_i
//	                 e_1  = P_r,  e_{i+1} = y_i & !Ai_a
//	                 P_a  = y_n & !An_a & P_r
//	call-n:       g = OR(Ai_r...), w = C(B_a, g), B_r = g & !w,
//	              Ai_a = w & !B_a & Ai_r
//	concur-n:     request fanout, C-element join of acknowledges
//	passivator:   single C-element
//	fork (mult-req): request fanout, C-element join
package hclib

import (
	"fmt"

	"balsabm/internal/ch"
	"balsabm/internal/gates"
)

// Build returns a hand-optimized gate netlist for the component if its
// CH program matches a library shape, along with true; otherwise
// (nil, false) and the caller falls back to synthesis.
func Build(p *ch.Program) (*gates.Netlist, bool) {
	if act, subs, ok := sequencerShape(p); ok {
		return sequencer(p.Name, act, subs), true
	}
	if ins, out, ok := callShape(p); ok {
		return call(p.Name, ins, out), true
	}
	if act, subs, ok := concurShape(p); ok {
		return concur(p.Name, act, subs), true
	}
	if a, b, ok := passivatorShape(p); ok {
		return passivator(p.Name, a, b), true
	}
	if act, out, n, ok := forkShape(p); ok {
		return fork(p.Name, act, out, n), true
	}
	return nil, false
}

// --- shape recognizers -------------------------------------------------

func pToP(e ch.Expr, act ch.Activity) (string, bool) {
	c, ok := e.(*ch.Chan)
	if !ok || c.Kind != ch.PToP || c.Act != act {
		return "", false
	}
	return c.Name, true
}

// sequencerShape matches (rep (enc-early (p-to-p passive act) seq-chain)).
func sequencerShape(p *ch.Program) (act string, subs []string, ok bool) {
	rep, isRep := p.Body.(*ch.Rep)
	if !isRep {
		return "", nil, false
	}
	op, isOp := rep.Body.(*ch.Op)
	if !isOp || op.Kind != ch.EncEarly {
		return "", nil, false
	}
	act, ok = pToP(op.A, ch.Passive)
	if !ok {
		return "", nil, false
	}
	e := op.B
	for {
		if name, isChan := pToP(e, ch.Active); isChan {
			subs = append(subs, name)
			return act, subs, true
		}
		seq, isSeq := e.(*ch.Op)
		if !isSeq || seq.Kind != ch.Seq {
			return "", nil, false
		}
		name, isChan := pToP(seq.A, ch.Active)
		if !isChan {
			return "", nil, false
		}
		subs = append(subs, name)
		e = seq.B
	}
}

// concurShape matches (rep (enc-early (p-to-p passive act) enc-middle chain)).
func concurShape(p *ch.Program) (act string, subs []string, ok bool) {
	rep, isRep := p.Body.(*ch.Rep)
	if !isRep {
		return "", nil, false
	}
	op, isOp := rep.Body.(*ch.Op)
	if !isOp || op.Kind != ch.EncEarly {
		return "", nil, false
	}
	act, ok = pToP(op.A, ch.Passive)
	if !ok {
		return "", nil, false
	}
	e := op.B
	for {
		if name, isChan := pToP(e, ch.Active); isChan {
			subs = append(subs, name)
			if len(subs) < 2 {
				return "", nil, false
			}
			return act, subs, true
		}
		mid, isOp := e.(*ch.Op)
		if !isOp || mid.Kind != ch.EncMiddle {
			return "", nil, false
		}
		name, isChan := pToP(mid.A, ch.Active)
		if !isChan {
			return "", nil, false
		}
		subs = append(subs, name)
		e = mid.B
	}
}

// callShape matches the n-way call of Section 4.2.
func callShape(p *ch.Program) (ins []string, out string, ok bool) {
	rep, isRep := p.Body.(*ch.Rep)
	if !isRep {
		return nil, "", false
	}
	var walk func(e ch.Expr) bool
	walk = func(e ch.Expr) bool {
		op, isOp := e.(*ch.Op)
		if !isOp {
			return false
		}
		if op.Kind == ch.Mutex {
			return walk(op.A) && walk(op.B)
		}
		if op.Kind != ch.EncEarly {
			return false
		}
		in, okIn := pToP(op.A, ch.Passive)
		o, okOut := pToP(op.B, ch.Active)
		if !okIn || !okOut {
			return false
		}
		if out == "" {
			out = o
		} else if out != o {
			return false
		}
		ins = append(ins, in)
		return true
	}
	if !walk(rep.Body) || len(ins) < 2 {
		return nil, "", false
	}
	return ins, out, true
}

// passivatorShape matches (rep (enc-middle (p-to-p passive a) (p-to-p passive b))).
func passivatorShape(p *ch.Program) (a, b string, ok bool) {
	rep, isRep := p.Body.(*ch.Rep)
	if !isRep {
		return "", "", false
	}
	op, isOp := rep.Body.(*ch.Op)
	if !isOp || op.Kind != ch.EncMiddle {
		return "", "", false
	}
	a, okA := pToP(op.A, ch.Passive)
	b, okB := pToP(op.B, ch.Passive)
	if !okA || !okB {
		return "", "", false
	}
	return a, b, true
}

// forkShape matches (rep (enc-early (p-to-p passive act) (mult-req active out n))).
func forkShape(p *ch.Program) (act, out string, n int, ok bool) {
	rep, isRep := p.Body.(*ch.Rep)
	if !isRep {
		return "", "", 0, false
	}
	op, isOp := rep.Body.(*ch.Op)
	if !isOp || op.Kind != ch.EncEarly {
		return "", "", 0, false
	}
	act, ok = pToP(op.A, ch.Passive)
	if !ok {
		return "", "", 0, false
	}
	c, isChan := op.B.(*ch.Chan)
	if !isChan || c.Kind != ch.MultReq || c.Act != ch.Active {
		return "", "", 0, false
	}
	return act, c.Name, c.N, true
}

// --- circuit builders ---------------------------------------------------

// inverted adds (or reuses) an inverter for a net.
type circuit struct {
	nl  *gates.Netlist
	inv map[int]int
}

func newCircuit(name string) *circuit {
	return &circuit{nl: gates.New(name), inv: map[int]int{}}
}

func (c *circuit) not(net int) int {
	if n, ok := c.inv[net]; ok {
		return n
	}
	n := c.nl.Fresh("n")
	c.nl.AddInstance("INV", []int{net}, n, 0)
	c.inv[net] = n
	return n
}

// andN places an AND gate of 2..4 inputs (cascading beyond 4).
func (c *circuit) and(ins ...int) int {
	for len(ins) > 4 {
		t := c.nl.Fresh("t")
		c.nl.AddInstance("AND4", ins[:4], t, 0)
		ins = append([]int{t}, ins[4:]...)
	}
	if len(ins) == 1 {
		return ins[0]
	}
	out := c.nl.Fresh("a")
	c.nl.AddInstance(fmt.Sprintf("AND%d", len(ins)), ins, out, 0)
	return out
}

func (c *circuit) or(ins ...int) int {
	for len(ins) > 4 {
		t := c.nl.Fresh("t")
		c.nl.AddInstance("OR4", ins[:4], t, 0)
		ins = append([]int{t}, ins[4:]...)
	}
	if len(ins) == 1 {
		return ins[0]
	}
	out := c.nl.Fresh("o")
	c.nl.AddInstance(fmt.Sprintf("OR%d", len(ins)), ins, out, 0)
	return out
}

// sequencer builds the C-element cascade sequencer. Every stage enable
// is gated by the activation request, so the whole cascade resets in
// parallel one C-element delay after P_r falls (the standard
// return-to-zero timing assumption of hand libraries: the environment
// does not re-activate within a couple of gate delays).
func sequencer(name, act string, subs []string) *gates.Netlist {
	c := newCircuit(name)
	pr := c.nl.Net(act + "_r")
	c.nl.Inputs = append(c.nl.Inputs, pr)
	e := pr
	var lastY, lastAck int
	for i, sub := range subs {
		ack := c.nl.Net(sub + "_a")
		c.nl.Inputs = append(c.nl.Inputs, ack)
		y := c.nl.Fresh("y")
		c.nl.AddInstance("C2", []int{ack, e}, y, 0)
		req := c.nl.Net(sub + "_r")
		c.nl.Outputs = append(c.nl.Outputs, req)
		c.nl.AddInstance("AND2", []int{e, c.not(y)}, req, 0)
		if i < len(subs)-1 {
			e = c.and(y, c.not(ack), pr)
		}
		lastY, lastAck = y, ack
	}
	pa := c.nl.Net(act + "_a")
	c.nl.Outputs = append(c.nl.Outputs, pa)
	c.nl.AddInstance("AND3", []int{lastY, c.not(lastAck), pr}, pa, 0)
	return c.nl
}

// call builds the OR/C-element call.
func call(name string, ins []string, out string) *gates.Netlist {
	c := newCircuit(name)
	var reqs []int
	for _, in := range ins {
		r := c.nl.Net(in + "_r")
		c.nl.Inputs = append(c.nl.Inputs, r)
		reqs = append(reqs, r)
	}
	ba := c.nl.Net(out + "_a")
	c.nl.Inputs = append(c.nl.Inputs, ba)
	g := c.or(reqs...)
	w := c.nl.Fresh("w")
	c.nl.AddInstance("C2", []int{ba, g}, w, 0)
	br := c.nl.Net(out + "_r")
	c.nl.Outputs = append(c.nl.Outputs, br)
	c.nl.AddInstance("AND2", []int{g, c.not(w)}, br, 0)
	for i, in := range ins {
		a := c.nl.Net(in + "_a")
		c.nl.Outputs = append(c.nl.Outputs, a)
		c.nl.AddInstance("AND3", []int{w, c.not(ba), reqs[i]}, a, 0)
	}
	return c.nl
}

// concur builds the parallel component: each child gets a private
// phase C-element (request drops when its acknowledge arrives; the
// child is "done" when its acknowledge has fallen again); the
// activation acknowledge rises when every child has completed its full
// handshake — the broad enclosure the CH spec requires.
func concur(name, act string, subs []string) *gates.Netlist {
	c := newCircuit(name)
	pr := c.nl.Net(act + "_r")
	c.nl.Inputs = append(c.nl.Inputs, pr)
	var dones []int
	for _, sub := range subs {
		ack := c.nl.Net(sub + "_a")
		c.nl.Inputs = append(c.nl.Inputs, ack)
		s := c.nl.Fresh("s")
		c.nl.AddInstance("C2", []int{ack, pr}, s, 0)
		req := c.nl.Net(sub + "_r")
		c.nl.Outputs = append(c.nl.Outputs, req)
		c.nl.AddInstance("AND2", []int{pr, c.not(s)}, req, 0)
		dones = append(dones, c.and(s, c.not(ack)))
	}
	pa := c.nl.Net(act + "_a")
	c.nl.Outputs = append(c.nl.Outputs, pa)
	c.nl.AddInstance("BUF", []int{c.and(append(dones, pr)...)}, pa, 0)
	return c.nl
}

// passivator is a single C-element driving both acknowledges.
func passivator(name, a, b string) *gates.Netlist {
	c := newCircuit(name)
	ar, br := c.nl.Net(a+"_r"), c.nl.Net(b+"_r")
	c.nl.Inputs = append(c.nl.Inputs, ar, br)
	aa, bb := c.nl.Net(a+"_a"), c.nl.Net(b+"_a")
	c.nl.Outputs = append(c.nl.Outputs, aa, bb)
	j := c.nl.Fresh("j")
	c.nl.AddInstance("C2", []int{ar, br}, j, 0)
	c.nl.AddInstance("BUF", []int{j}, aa, 0)
	c.nl.AddInstance("BUF", []int{j}, bb, 0)
	return c.nl
}

// fork drives the shared request of a mult-req channel: the request
// drops once all acknowledges are up; the activation acknowledge rises
// once they are all down again (full broad enclosure).
func fork(name, act, out string, n int) *gates.Netlist {
	c := newCircuit(name)
	pr := c.nl.Net(act + "_r")
	c.nl.Inputs = append(c.nl.Inputs, pr)
	var acks []int
	for i := 1; i <= n; i++ {
		a := c.nl.Net(fmt.Sprintf("%s_a%d", out, i))
		c.nl.Inputs = append(c.nl.Inputs, a)
		acks = append(acks, a)
	}
	allUp := c.and(acks...)
	var ackInvs []int
	for _, a := range acks {
		ackInvs = append(ackInvs, c.not(a))
	}
	allDown := c.and(ackInvs...)
	s := c.nl.Fresh("s")
	c.nl.AddInstance("C2", []int{allUp, pr}, s, 0)
	req := c.nl.Net(out + "_r")
	c.nl.Outputs = append(c.nl.Outputs, req)
	c.nl.AddInstance("AND2", []int{pr, c.not(s)}, req, 0)
	pa := c.nl.Net(act + "_a")
	c.nl.Outputs = append(c.nl.Outputs, pa)
	c.nl.AddInstance("AND3", []int{s, allDown, pr}, pa, 0)
	return c.nl
}

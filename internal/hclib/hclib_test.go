package hclib

import (
	"fmt"
	"testing"

	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chmap"
	"balsabm/internal/chtobm"
	"balsabm/internal/sim"
)

// verify runs the hand circuit against the component's compiled
// Burst-Mode specification with a gate-level spec driver.
func verify(t *testing.T, p *ch.Program, cycles int) {
	t.Helper()
	nl, ok := Build(p)
	if !ok {
		t.Fatalf("%s: no library circuit", p.Name)
	}
	sp, err := chtobm.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.AMS035()
	for _, seed := range []int64{1, 2, 3} {
		s := sim.New(lib)
		s.AddNetlist(nl, p.Name, nil)
		d := sim.NewSpecDriver(s, sp, 0.6, seed, nil)
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		d.Start(cycles)
		if err := s.Run(1e6, 1_000_000); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if d.Err != nil {
			t.Fatalf("%s: %v", p.Name, d.Err)
		}
		if d.Cycles < cycles {
			t.Fatalf("%s: only %d cycles", p.Name, d.Cycles)
		}
	}
}

func TestSequencerCircuits(t *testing.T) {
	for n := 1; n <= 5; n++ {
		subs := make([]string, n)
		for i := range subs {
			subs[i] = fmt.Sprintf("A%d", i+1)
		}
		verify(t, chmap.Sequencer(fmt.Sprintf("seq%d", n), "P", subs...), 60)
	}
}

func TestCallCircuits(t *testing.T) {
	for n := 2; n <= 4; n++ {
		ins := make([]string, n)
		for i := range ins {
			ins[i] = fmt.Sprintf("I%d", i+1)
		}
		verify(t, chmap.Call(fmt.Sprintf("call%d", n), ins, "B"), 60)
	}
}

func TestConcurCircuits(t *testing.T) {
	for n := 2; n <= 4; n++ {
		subs := make([]string, n)
		for i := range subs {
			subs[i] = fmt.Sprintf("C%d", i+1)
		}
		verify(t, chmap.Concur(fmt.Sprintf("concur%d", n), "P", subs...), 60)
	}
}

func TestPassivatorCircuit(t *testing.T) {
	verify(t, chmap.Passivator("pass", "A", "B"), 60)
}

func TestForkCircuit(t *testing.T) {
	verify(t, chmap.Fork("fork3", "P", "O", 3), 60)
}

// Non-library shapes are rejected (the flow falls back to synthesis).
func TestUnknownShapes(t *testing.T) {
	dw := chmap.DecisionWait("dw", "a", []string{"i1", "i2"}, []string{"o1", "o2"})
	if _, ok := Build(dw); ok {
		t.Fatal("decision-wait should not match a library circuit")
	}
	body, err := ch.Parse(`(rep (enc-early (p-to-p passive a)
	    (seq (enc-early void (p-to-p active c)) (enc-early void (p-to-p active c)))))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Build(&ch.Program{Name: "merged", Body: body}); ok {
		t.Fatal("clustered controller should not match a library circuit")
	}
}

// Hand circuits must be dramatically smaller than synthesized
// speed-mode controllers — the baseline-vs-optimized area asymmetry the
// paper reports.
func TestHandCellsAreSmall(t *testing.T) {
	lib := cell.AMS035()
	seq := chmap.Sequencer("seq2", "P", "A1", "A2")
	nl, ok := Build(seq)
	if !ok {
		t.Fatal("no circuit")
	}
	if a := nl.Area(lib); a > 450 {
		t.Fatalf("hand sequencer area %.0f, expected well under synthesized size", a)
	}
}

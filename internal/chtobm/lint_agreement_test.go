package chtobm_test

// The fuzzer in fuzz_test.go checks the paper's correct-by-construction
// claim: legal programs always compile to valid Burst-Mode specs. This
// file checks the other half of the contract, between the generator,
// ch.Validate and the chlint analyzer: all three must agree on what is
// legal. (It lives in an external test package because analysis imports
// core, which imports chtobm.)

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"balsabm/internal/analysis"
	"balsabm/internal/ch"
	"balsabm/internal/core"
)

// genLegal mirrors fuzz_test.go's generator: expressions legal by
// construction per Table 1.
type genLegal struct {
	rng  *rand.Rand
	next int
}

func (g *genLegal) fresh() string {
	g.next++
	return fmt.Sprintf("c%d", g.next)
}

func (g *genLegal) gen(act ch.Activity, depth int) ch.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return &ch.Chan{Kind: ch.PToP, Act: act, Name: g.fresh()}
	}
	if act == ch.Active {
		switch g.rng.Intn(4) {
		case 0:
			return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 1:
			return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 2:
			return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		default:
			return &ch.Op{Kind: ch.SeqOv, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 1:
		return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 2:
		return &ch.Op{Kind: ch.EncLate, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 3:
		return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	default:
		return &ch.Op{Kind: ch.Mutex, A: g.gen(ch.Passive, depth-1), B: g.gen(ch.Passive, depth-1)}
	}
}

func (g *genLegal) genAny(depth int) ch.Expr {
	if g.rng.Intn(2) == 0 {
		return g.gen(ch.Active, depth)
	}
	return g.gen(ch.Passive, depth)
}

func netlistOf(e ch.Expr) *core.Netlist {
	return &core.Netlist{Components: []*ch.Program{{Name: "fuzz", Body: e}}}
}

func legalityErrors(ds []analysis.Diag) []analysis.Diag {
	var out []analysis.Diag
	for _, d := range ds {
		if d.Code == "CH001" {
			out = append(out, d)
		}
	}
	return out
}

// TestFuzzAnalyzerAcceptsLegal: programs that are legal by
// construction (and accepted by ch.Validate) produce no CH001
// diagnostics — the analyzer never cries wolf on Table 1.
func TestFuzzAnalyzerAcceptsLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(20020304))
	for i := 0; i < 300; i++ {
		g := &genLegal{rng: rng}
		e := &ch.Rep{Body: &ch.Op{
			Kind: ch.EncEarly,
			A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "act"},
			B:    g.genAny(rng.Intn(4) + 1),
		}}
		if err := ch.Validate(e); err != nil {
			t.Fatalf("generator produced an illegal program: %v", err)
		}
		if errs := legalityErrors(analysis.Analyze(netlistOf(e))); len(errs) > 0 {
			t.Fatalf("fuzz %d: validator accepts but analyzer reports %d CH001:\n%s\n%s",
				i, len(errs), analysis.Format(errs, ""), ch.Format(e))
		}
	}
}

// TestFuzzAnalyzerRejectsMutated: flipping one operator in a legal
// program so ch.Validate rejects it must also produce at least one
// CH001 from the analyzer — both reject the same programs.
func TestFuzzAnalyzerRejectsMutated(t *testing.T) {
	kinds := []ch.OpKind{ch.EncEarly, ch.EncMiddle, ch.EncLate, ch.Seq, ch.SeqOv, ch.Mutex}
	rng := rand.New(rand.NewSource(42))
	rejected := 0
	for i := 0; i < 400; i++ {
		g := &genLegal{rng: rng}
		e := g.genAny(rng.Intn(4) + 2)
		// Mutate one random Op node's kind.
		var ops []*ch.Op
		ch.Walk(e, func(x ch.Expr) {
			if op, ok := x.(*ch.Op); ok {
				ops = append(ops, op)
			}
		})
		if len(ops) == 0 {
			continue
		}
		op := ops[rng.Intn(len(ops))]
		op.Kind = kinds[rng.Intn(len(kinds))]
		valid := ch.Validate(e) == nil
		errs := legalityErrors(analysis.Analyze(netlistOf(e)))
		if valid && len(errs) > 0 {
			t.Fatalf("fuzz %d: validator accepts, analyzer rejects:\n%s\n%s",
				i, analysis.Format(errs, ""), ch.Format(e))
		}
		if !valid {
			rejected++
			if len(errs) == 0 {
				t.Fatalf("fuzz %d: validator rejects (%v), analyzer silent:\n%s",
					i, ch.Validate(e), ch.Format(e))
			}
		}
	}
	if rejected < 50 {
		t.Fatalf("mutation fuzzer too tame: only %d rejections", rejected)
	}
}

// TestLintCorpusAgreement: for every examples/lint file, the analyzer
// finds errors exactly when parse-then-validate rejects it, except for
// netlist-level findings (CH01x, CH03x, CH04x) that ch.Validate does
// not model. This keeps the broken corpus honest: everything tagged as
// an error either fails validation or fails a check validation is too
// narrow to express.
func TestLintCorpusAgreement(t *testing.T) {
	files, err := filepath.Glob("../../examples/lint/*.ch")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		ds := analysis.LintSource(string(src))
		// Lint input is either a netlist of (program ...) forms or a
		// single bare expression; try both parse shapes.
		var bodies []ch.Expr
		if n, err := core.ParseNetlist(string(src)); err == nil {
			for _, p := range n.Components {
				bodies = append(bodies, p.Body)
			}
		} else if e, err := ch.Parse(string(src)); err == nil {
			bodies = append(bodies, e)
		} else {
			// Parse failures must surface as CH000.
			if len(ds) != 1 || ds[0].Code != "CH000" {
				t.Errorf("%s: parse fails (%v) but lint says:\n%s",
					filepath.Base(file), err, analysis.Format(ds, ""))
			}
			continue
		}
		validates := true
		for _, body := range bodies {
			if ch.Validate(body) != nil {
				validates = false
			}
		}
		if !validates && !analysis.HasErrors(ds) {
			t.Errorf("%s: validation rejects but lint is error-free", filepath.Base(file))
		}
		if validates {
			// Any lint error here must be a netlist/phase-level check
			// beyond single-program validation.
			for _, d := range ds {
				if d.Severity != analysis.SevError {
					continue
				}
				switch d.Code {
				case "CH010", "CH011", "CH012", "CH030", "CH040":
				default:
					t.Errorf("%s: lint error %s on a program ch.Validate accepts", filepath.Base(file), d.Code)
				}
			}
		}
	}
}

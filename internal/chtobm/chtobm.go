// Package chtobm implements the CH-to-BMS compilation algorithm of
// Section 3.6 of the paper: a CH program is expanded into a linear
// intermediate form (signal transitions with inserted labels, gotos and
// external input choices), and the intermediate form is translated into
// a Burst-Mode specification by accumulating alternating input/output
// bursts into arcs.
package chtobm

import (
	"fmt"
	"sort"

	"balsabm/internal/bm"
	"balsabm/internal/ch"
)

// Compile translates a CH program into a Burst-Mode specification. The
// program is first validated against the Burst-Mode aware restrictions
// (Table 1); the resulting specification is checked for Burst-Mode
// well-formedness. The paper's central claim — restrictions make the
// translation correct by construction — shows up here as: if Validate
// passes, Check passes.
func Compile(p *ch.Program) (*bm.Spec, error) {
	if err := ch.Validate(p.Body); err != nil {
		return nil, err
	}
	sp, err := compileNoCheck(p)
	if err != nil {
		return nil, err
	}
	if err := sp.Check(); err != nil {
		return nil, fmt.Errorf("chtobm: %s: compiled spec fails Burst-Mode check: %w", p.Name, err)
	}
	return sp, nil
}

// CompileLoose translates without the final well-formedness check. It
// is used by the clustering engine to probe whether a merged component
// is still BM-synthesizable, and by tests that exercise fragments.
func CompileLoose(p *ch.Program) (*bm.Spec, error) {
	if err := ch.Validate(p.Body); err != nil {
		return nil, err
	}
	return compileNoCheck(p)
}

func compileNoCheck(p *ch.Program) (*bm.Spec, error) {
	x, err := ch.Expand(p.Body)
	if err != nil {
		return nil, err
	}
	b := newBuilder(p.Name)
	w := walker{cur: b.newState()}
	if err := b.process(x.Flatten(), w); err != nil {
		return nil, fmt.Errorf("chtobm: %s: %w", p.Name, err)
	}
	return b.finish()
}

// builder accumulates BM arcs while walking the intermediate form.
type builder struct {
	name    string
	nstates int
	arcs    []bm.Arc
	labels  map[string]int
	parent  []int // union-find for state aliasing
	dirs    map[string]ch.Dir
}

func newBuilder(name string) *builder {
	return &builder{name: name, labels: map[string]int{}, dirs: map[string]ch.Dir{}}
}

func (b *builder) newState() int {
	b.nstates++
	b.parent = append(b.parent, b.nstates-1)
	return b.nstates - 1
}

func (b *builder) find(s int) int {
	for b.parent[s] != s {
		b.parent[s] = b.parent[b.parent[s]]
		s = b.parent[s]
	}
	return s
}

func (b *builder) union(a, c int) {
	ra, rc := b.find(a), b.find(c)
	if ra != rc {
		// Keep the smaller (earlier-created) representative so the
		// final numbering follows creation order.
		if ra < rc {
			b.parent[rc] = ra
		} else {
			b.parent[ra] = rc
		}
	}
}

func (b *builder) noteDir(t ch.Trans) error {
	if d, ok := b.dirs[t.Signal]; ok {
		if d != t.Dir {
			return fmt.Errorf("signal %s used as both input and output", t.Signal)
		}
		return nil
	}
	b.dirs[t.Signal] = t.Dir
	return nil
}

// walker is the traversal cursor: the current state (-1 when control
// has left via a goto) and the input/output bursts accumulated since
// the last arc was closed.
type walker struct {
	cur     int
	in, out bm.Burst
}

func (w walker) pending() bool { return len(w.in) > 0 || len(w.out) > 0 }

func (w walker) clone() walker {
	return walker{cur: w.cur, in: w.in.Clone(), out: w.out.Clone()}
}

// closeArc emits the pending arc from w.cur to the given target state.
func (b *builder) closeArc(w *walker, to int) error {
	if len(w.in) == 0 {
		return fmt.Errorf("output burst %q is not triggered by any input burst (state %d)",
			w.out.String(), w.cur)
	}
	in, out := w.in.Clone(), w.out.Clone()
	in.Sort()
	out.Sort()
	b.arcs = append(b.arcs, bm.Arc{From: w.cur, To: to, In: in, Out: out})
	w.cur = to
	w.in, w.out = nil, nil
	return nil
}

// firstTransition finds the first signal transition in a sequence,
// descending into choices (all branch firsts are checked by process
// itself; this is used for error messages only).
func firstTransition(items []ch.Item) (ch.Trans, bool) {
	for _, it := range items {
		switch n := it.(type) {
		case ch.Trans:
			return n, true
		case ch.Choice:
			for _, br := range n.Branches {
				if t, ok := firstTransition(br); ok {
					return t, true
				}
			}
		}
	}
	return ch.Trans{}, false
}

func (b *builder) process(items []ch.Item, w walker) error {
	for i := 0; i < len(items); i++ {
		switch it := items[i].(type) {
		case ch.Trans:
			if err := b.noteDir(it); err != nil {
				return err
			}
			if w.cur < 0 {
				return fmt.Errorf("unreachable transition %s after goto", it)
			}
			if it.Dir == ch.In {
				if len(w.out) > 0 {
					if err := b.closeArc(&w, b.newState()); err != nil {
						return err
					}
				}
				w.in = append(w.in, bm.Sig{Name: it.Signal, Rise: it.Rise})
			} else {
				w.out = append(w.out, bm.Sig{Name: it.Signal, Rise: it.Rise})
			}
		case ch.Label:
			if w.cur < 0 {
				// Control left via goto; with bgotos handled by forward
				// splicing, nothing can resume at this label on this
				// path. The path is finished.
				return nil
			}
			if w.pending() {
				if err := b.closeArc(&w, b.newState()); err != nil {
					return err
				}
			}
			if prev, ok := b.labels[it.Name]; ok {
				// A label reached along two converging paths (e.g. a
				// loop entered after an external choice): the states
				// merge. Signal-value consistency is verified by the
				// final Burst-Mode check.
				b.union(prev, w.cur)
			} else {
				b.labels[it.Name] = w.cur
			}
		case ch.Goto:
			if w.cur < 0 {
				return nil
			}
			target, ok := b.labels[it.Name]
			if !ok {
				return fmt.Errorf("goto to unbound label %s", it.Name)
			}
			if !w.pending() {
				b.union(w.cur, target)
				w.cur = -1
				continue
			}
			if err := b.closeArc(&w, target); err != nil {
				return err
			}
			w.cur = -1
		case ch.BGoto:
			// Break: splice control forward to just past the matching
			// end-of-loop label, keeping the pending bursts — the
			// post-loop outputs ride on the burst that triggered the
			// break.
			if w.cur < 0 {
				return nil
			}
			j := i + 1
			for ; j < len(items); j++ {
				if l, ok := items[j].(ch.Label); ok && l.Name == it.Name {
					break
				}
			}
			if j == len(items) {
				return fmt.Errorf("bgoto to label %s not found downstream", it.Name)
			}
			i = j // loop increment skips the label itself
		case ch.Choice:
			if w.cur < 0 {
				return nil
			}
			// A pending output burst is fully determined before the
			// choice: close its arc once, so the branches fork from a
			// single state instead of duplicating the arc (which would
			// be nondeterministic). A pending input burst without
			// outputs stays open — the branch-selecting inputs join it
			// (e.g. the decision-wait's a1_r+ i1_r+ burst).
			if len(w.out) > 0 {
				if err := b.closeArc(&w, b.newState()); err != nil {
					return err
				}
			}
			rest := items[i+1:]
			for bi, branch := range it.Branches {
				if t, ok := firstTransition(branch); ok && t.Dir != ch.In {
					return fmt.Errorf("choice branch %d begins with output %s; external choices must be resolved by inputs", bi+1, t)
				}
				seq := make([]ch.Item, 0, len(branch)+len(rest))
				seq = append(seq, branch...)
				seq = append(seq, rest...)
				if err := b.process(seq, w.clone()); err != nil {
					return fmt.Errorf("choice branch %d: %w", bi+1, err)
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown intermediate item %T", it)
		}
	}
	if w.cur >= 0 && w.pending() {
		return fmt.Errorf("dangling bursts %q/%q at end of program (missing rep?)",
			w.in.String(), w.out.String())
	}
	return nil
}

// finish resolves state aliases, prunes unreachable states, renumbers
// the remainder in creation order (matching the paper's figures) and
// assembles the Spec.
func (b *builder) finish() (*bm.Spec, error) {
	// Resolve aliases.
	arcs := make([]bm.Arc, len(b.arcs))
	for i, a := range b.arcs {
		arcs[i] = bm.Arc{From: b.find(a.From), To: b.find(a.To), In: a.In, Out: a.Out}
	}
	start := b.find(0)
	// Reachability from the start state.
	adj := map[int][]int{}
	for _, a := range arcs {
		adj[a.From] = append(adj[a.From], a.To)
	}
	reach := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range adj[s] {
			if !reach[t] {
				reach[t] = true
				queue = append(queue, t)
			}
		}
	}
	// Renumber reachable states in creation order; the start state is
	// the earliest created, so it becomes 0.
	var order []int
	for s := 0; s < b.nstates; s++ {
		if b.find(s) == s && reach[s] {
			order = append(order, s)
		}
	}
	renum := map[int]int{}
	for i, s := range order {
		renum[s] = i
	}
	sp := &bm.Spec{Name: b.name, Start: renum[start], NStates: len(order)}
	sp.Arcs = make([]bm.Arc, 0, len(arcs))
	seen := make(map[string]bool, len(arcs))
	for _, a := range arcs {
		if !reach[a.From] {
			continue
		}
		key := fmt.Sprintf("%d>%d:%s/%s", renum[a.From], renum[a.To], a.In, a.Out)
		if seen[key] {
			continue // identical arcs from merged choice tails
		}
		seen[key] = true
		sp.Arcs = append(sp.Arcs, bm.Arc{From: renum[a.From], To: renum[a.To], In: a.In, Out: a.Out})
	}
	for sig, d := range b.dirs {
		if d == ch.In {
			sp.Inputs = append(sp.Inputs, sig)
		} else {
			sp.Outputs = append(sp.Outputs, sig)
		}
	}
	sort.Strings(sp.Inputs)
	sort.Strings(sp.Outputs)
	return sp, nil
}

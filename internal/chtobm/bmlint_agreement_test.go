package chtobm

import (
	"fmt"
	"math/rand"
	"testing"

	"balsabm/internal/bmlint"
	"balsabm/internal/ch"
)

// TestFuzzBmlintCleanByConstruction mirrors netlint's flow-emitted-
// circuits invariant one tier up: every spec chtobm compiles from a
// legal CH program is bmlint-clean at the error tier. Since bm.Check
// is a thin wrapper over the same bm.Violations core bmlint's error
// pass reports, this also pins the two entry points to agree — a spec
// passing Check can never carry a BM-error diagnostic and vice versa.
func TestFuzzBmlintCleanByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20020304)) // DATE 2002
	for i := 0; i < 300; i++ {
		g := &genCtx{rng: rng}
		body := &ch.Rep{Body: &ch.Op{
			Kind: ch.EncEarly,
			A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "act"},
			B:    g.genAny(rng.Intn(4) + 1),
		}}
		p := &ch.Program{Name: fmt.Sprintf("fuzz%d", i), Body: body}
		sp, err := Compile(p)
		if err != nil {
			t.Fatalf("fuzz %d: %v\n%s", i, err, ch.Format(p.Body))
		}
		ds := bmlint.Analyze(sp)
		for _, d := range ds {
			if d.Severity == bmlint.SevError {
				t.Fatalf("fuzz %d: compiled spec carries BM-error:\n%s\n%s",
					i, d.Render(sp.Name), sp)
			}
		}
		if (sp.Check() == nil) != !bmlint.HasErrors(ds) {
			t.Fatalf("fuzz %d: Check and bmlint disagree on %s", i, sp.Name)
		}
	}
}

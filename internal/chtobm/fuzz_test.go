package chtobm

import (
	"fmt"
	"math/rand"
	"testing"

	"balsabm/internal/ch"
)

// genCtx generates random CH expressions that respect the Burst-Mode
// aware restrictions by construction, so the correct-by-construction
// claim (Section 3.5) can be fuzzed: every generated program must
// compile into a specification passing the Burst-Mode checks.
type genCtx struct {
	rng  *rand.Rand
	next int
}

func (g *genCtx) fresh() string {
	g.next++
	return fmt.Sprintf("c%d", g.next)
}

// gen produces an expression with the requested activity.
func (g *genCtx) gen(act ch.Activity, depth int) ch.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return &ch.Chan{Kind: ch.PToP, Act: act, Name: g.fresh()}
	}
	if act == ch.Active {
		// Operators that can be active: enc-early/enc-middle/seq with
		// an active first argument (second argument must then be
		// active per Table 1), or seq-ov (both active).
		switch g.rng.Intn(4) {
		case 0:
			return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 1:
			return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		case 2:
			return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		default:
			return &ch.Op{Kind: ch.SeqOv, A: g.gen(ch.Active, depth-1), B: g.gen(ch.Active, depth-1)}
		}
	}
	// Passive expressions: enclosures/seq with passive first argument
	// (second may be anything), or mutex of two passive arms.
	switch g.rng.Intn(5) {
	case 0:
		return &ch.Op{Kind: ch.EncEarly, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 1:
		return &ch.Op{Kind: ch.EncMiddle, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 2:
		return &ch.Op{Kind: ch.EncLate, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	case 3:
		return &ch.Op{Kind: ch.Seq, A: g.gen(ch.Passive, depth-1), B: g.genAny(depth - 1)}
	default:
		return &ch.Op{Kind: ch.Mutex, A: g.gen(ch.Passive, depth-1), B: g.gen(ch.Passive, depth-1)}
	}
}

func (g *genCtx) genAny(depth int) ch.Expr {
	if g.rng.Intn(2) == 0 {
		return g.gen(ch.Active, depth)
	}
	return g.gen(ch.Passive, depth)
}

// TestFuzzCorrectByConstruction generates hundreds of random legal CH
// programs and checks the paper's central claim: with the Table 1
// restrictions obeyed, CH-to-BMS always yields a well-formed Burst-Mode
// specification.
func TestFuzzCorrectByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20020304)) // DATE 2002
	for i := 0; i < 400; i++ {
		g := &genCtx{rng: rng}
		body := &ch.Rep{Body: &ch.Op{
			Kind: ch.EncEarly,
			A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "act"},
			B:    g.genAny(rng.Intn(4) + 1),
		}}
		p := &ch.Program{Name: fmt.Sprintf("fuzz%d", i), Body: body}
		if err := ch.Validate(p.Body); err != nil {
			t.Fatalf("generator produced an illegal program: %v\n%s", err, ch.Format(p.Body))
		}
		sp, err := Compile(p)
		if err != nil {
			t.Fatalf("fuzz %d: %v\n%s", i, err, ch.Format(p.Body))
		}
		if err := sp.Check(); err != nil {
			t.Fatalf("fuzz %d: spec fails checks: %v\n%s", i, err, ch.Format(p.Body))
		}
		// The machine must be a closed loop back to the start state.
		backToStart := false
		for _, a := range sp.Arcs {
			if a.To == sp.Start {
				backToStart = true
			}
		}
		if !backToStart {
			t.Fatalf("fuzz %d: no arc returns to start\n%s", i, sp)
		}
	}
}

// TestFuzzRoundTrip: generated programs survive print/parse round trips
// structurally.
func TestFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		g := &genCtx{rng: rng}
		e := g.genAny(3)
		text := ch.Format(e)
		back, err := ch.Parse(text)
		if err != nil {
			t.Fatalf("re-parse: %v\n%s", err, text)
		}
		if ch.Format(back) != text {
			t.Fatalf("round trip mismatch:\n%s\n%s", text, ch.Format(back))
		}
	}
}

package chtobm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"balsabm/internal/bm"
	"balsabm/internal/ch"
	"balsabm/internal/minimalist"
)

func compile(t *testing.T, name, src string) *bm.Spec {
	t.Helper()
	body, err := ch.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := Compile(&ch.Program{Name: name, Body: body})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return sp
}

func arcSet(sp *bm.Spec) map[string]bool {
	m := map[string]bool{}
	for _, a := range sp.Arcs {
		m[fmt.Sprintf("%d>%d:%s/%s", a.From, a.To, a.In, a.Out)] = true
	}
	return m
}

func wantArcs(t *testing.T, sp *bm.Spec, want []string) {
	t.Helper()
	got := arcSet(sp)
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing arc %q in\n%s", w, sp)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d arcs, want %d:\n%s", len(got), len(want), sp)
	}
}

// Fig. 3 (left): the sequencer's Burst-Mode specification has six
// states 0..5 in a single cycle.
func TestFig3Sequencer(t *testing.T) {
	sp := compile(t, "sequencer", `(rep (enc-early (p-to-p passive P)
	   (seq (p-to-p active A1) (p-to-p active A2))))`)
	if sp.NStates != 6 {
		t.Fatalf("got %d states, want 6:\n%s", sp.NStates, sp)
	}
	wantArcs(t, sp, []string{
		"0>1:P_r+/A1_r+",
		"1>2:A1_a+/A1_r-",
		"2>3:A1_a-/A2_r+",
		"3>4:A2_a+/A2_r-",
		"4>5:A2_a-/P_a+",
		"5>0:P_r-/P_a-",
	})
}

// Fig. 3 (middle): the call module has seven states 0..6, two branches
// of the initial choice.
func TestFig3Call(t *testing.T) {
	sp := compile(t, "call", `(rep (mutex
	   (enc-early (p-to-p passive A1) (p-to-p active B))
	   (enc-early (p-to-p passive A2) (p-to-p active B))))`)
	if sp.NStates != 7 {
		t.Fatalf("got %d states, want 7:\n%s", sp.NStates, sp)
	}
	wantArcs(t, sp, []string{
		"0>1:A1_r+/B_r+",
		"1>2:B_a+/B_r-",
		"2>3:B_a-/A1_a+",
		"3>0:A1_r-/A1_a-",
		"0>4:A2_r+/B_r+",
		"4>5:B_a+/B_r-",
		"5>6:B_a-/A2_a+",
		"6>0:A2_r-/A2_a-",
	})
}

// Fig. 3 (right): the passivator has two states with double bursts.
func TestFig3Passivator(t *testing.T) {
	sp := compile(t, "passivator", `(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`)
	if sp.NStates != 2 {
		t.Fatalf("got %d states, want 2:\n%s", sp.NStates, sp)
	}
	wantArcs(t, sp, []string{
		"0>1:A_r+ B_r+/A_a+ B_a+",
		"1>0:A_r- B_r-/A_a- B_a-",
	})
}

// The decision-wait of Section 4.1 (the activating component of the
// worked optimization example).
func TestDecisionWait(t *testing.T) {
	sp := compile(t, "dw", `(rep (enc-early (p-to-p passive a1)
	   (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
	          (enc-early (p-to-p passive i2) (p-to-p active o2)))))`)
	if sp.NStates != 9 {
		t.Fatalf("got %d states, want 9 (Fig 4 left):\n%s", sp.NStates, sp)
	}
	// The two initial arcs carry the activation and the selecting input
	// together: a1_r+ i1_r+ / o1_r+.
	wantArcs(t, sp, []string{
		"0>1:a1_r+ i1_r+/o1_r+",
		"1>2:o1_a+/o1_r-",
		"2>3:o1_a-/i1_a+",
		"3>4:i1_r-/a1_a+ i1_a-",
		"4>0:a1_r-/a1_a-",
		"0>5:a1_r+ i2_r+/o2_r+",
		"5>6:o2_a+/o2_r-",
		"6>7:o2_a-/i2_a+",
		"7>8:i2_r-/a1_a+ i2_a-",
		"8>0:a1_r-/a1_a-",
	})
}

// A mult-req channel produces a multi-signal burst on one arc.
func TestMultReqBursts(t *testing.T) {
	sp := compile(t, "fork2", `(rep (enc-early (p-to-p passive p) (mult-req active c 2)))`)
	found := false
	for _, a := range sp.Arcs {
		if a.In.String() == "c_a1+ c_a2+" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no joint acknowledge burst:\n%s", sp)
	}
}

// mux-req: the While-style component with a break terminating the loop.
// The exit arm completes its guard handshake with seq before breaking,
// so the activation acknowledge rides on the final guard burst.
func TestMuxReqWithBreak(t *testing.T) {
	src := `(rep (enc-early (p-to-p passive go)
	   (rep (mux-req s
	      (enc-early (p-to-p active body))
	      (seq (break))))))`
	sp := compile(t, "while", src)
	if err := sp.Check(); err != nil {
		t.Fatal(err)
	}
	// The break arm must route back to completing the go handshake.
	var hasGoAck bool
	for _, a := range sp.Arcs {
		if a.Out.Contains(bm.Sig{Name: "go_a", Rise: true}) {
			hasGoAck = true
		}
	}
	if !hasGoAck {
		t.Fatalf("break arm never acknowledges the activation:\n%s", sp)
	}
	// The loop must still loop: some arc returns to the loop-entry
	// state carrying the body channel's completion.
	if sp.NStates < 6 {
		t.Fatalf("suspiciously small machine:\n%s", sp)
	}
}

// A break arm that abandons its guard handshake (enc-early encloses the
// break before the guard completes) leaves the guard request dangling;
// the polarity check must reject the program.
func TestBreakAbandoningHandshakeRejected(t *testing.T) {
	src := `(rep (enc-early (p-to-p passive go)
	   (rep (mux-req s
	      (enc-early (p-to-p active body))
	      (enc-early (break))))))`
	body, err := ch.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(&ch.Program{Name: "bad-break", Body: body}); err == nil {
		t.Fatal("expected rejection of protocol-violating break")
	}
}

// The compiled spec must be deterministic and polarity-consistent
// (correct-by-construction claim) for a family of generated programs:
// sequencers of width n, nested enclosures, mutex trees.
func TestQuickSequencerFamily(t *testing.T) {
	f := func(width uint8) bool {
		n := int(width)%6 + 1
		inner := "(p-to-p active A0)"
		for i := 1; i < n; i++ {
			inner = fmt.Sprintf("(seq (p-to-p active A%d) %s)", i, inner)
		}
		src := fmt.Sprintf("(rep (enc-early (p-to-p passive P) %s))", inner)
		body, err := ch.Parse(src)
		if err != nil {
			return false
		}
		sp, err := Compile(&ch.Program{Name: "gen", Body: body})
		if err != nil {
			return false
		}
		return sp.NStates == 2*n+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMutexFamily(t *testing.T) {
	f := func(width uint8) bool {
		n := int(width)%4 + 2
		arms := make([]string, n)
		for i := range arms {
			arms[i] = fmt.Sprintf("(enc-early (p-to-p passive P%d) (p-to-p active Q%d))", i, i)
		}
		src := "(rep (mutex " + strings.Join(arms, " ") + "))"
		body, err := ch.Parse(src)
		if err != nil {
			return false
		}
		sp, err := Compile(&ch.Program{Name: "gen", Body: body})
		if err != nil {
			return false
		}
		// n branches of 4 states each minus the shared start: 3n+1.
		return sp.NStates == 3*n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Programs that begin with an output cannot become Burst-Mode machines:
// the compiler must reject rather than emit an input-less arc.
func TestRejectAutonomousProgram(t *testing.T) {
	body, err := ch.Parse(`(rep (seq (p-to-p active a) (p-to-p active b)))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(&ch.Program{Name: "auto", Body: body}); err == nil {
		t.Fatal("expected error for autonomous (output-first) program")
	}
}

// Table 1 ("no" entries) must be rejected before BM construction.
func TestRejectIllegalCombination(t *testing.T) {
	body, err := ch.Parse(`(rep (enc-late (p-to-p active a) (p-to-p active b)))`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(&ch.Program{Name: "bad", Body: body})
	if err == nil {
		t.Fatal("expected validation error")
	}
	var verr *ch.ValidationError
	if !strings.Contains(err.Error(), "Table 1") {
		t.Fatalf("unexpected error: %v (%T)", err, verr)
	}
}

// Correct-by-construction (Section 3.5): every legal single-operator
// program wrapped in a passive activation compiles into a spec that
// passes Check.
func TestCorrectByConstruction(t *testing.T) {
	ops := []string{"enc-early", "enc-middle", "enc-late", "seq", "seq-ov", "mutex"}
	acts := []string{"active", "passive"}
	kinds := []ch.OpKind{ch.EncEarly, ch.EncMiddle, ch.EncLate, ch.Seq, ch.SeqOv, ch.Mutex}
	for oi, op := range ops {
		for _, a := range acts {
			for _, b := range acts {
				src := fmt.Sprintf("(rep (enc-early (p-to-p passive act) (%s (p-to-p %s x) (p-to-p %s y))))", op, a, b)
				body, err := ch.Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				inner := &ch.Op{Kind: kinds[oi],
					A: &ch.Chan{Kind: ch.PToP, Act: actOf(a), Name: "x"},
					B: &ch.Chan{Kind: ch.PToP, Act: actOf(b), Name: "y"}}
				legalInner := ch.Legal(kinds[oi], actOf(a), actOf(b))
				legalOuter := ch.Legal(ch.EncEarly, ch.Passive, inner.Activity())
				sp, err := Compile(&ch.Program{Name: "cbc", Body: body})
				if legalInner && legalOuter {
					if err != nil {
						t.Errorf("%s %s/%s: legal but failed: %v", op, a, b, err)
						continue
					}
					if cerr := sp.Check(); cerr != nil {
						t.Errorf("%s %s/%s: compiled spec not BM: %v\n%s", op, a, b, cerr, sp)
					}
				} else if err == nil {
					t.Errorf("%s %s/%s: illegal but compiled", op, a, b)
				}
			}
		}
	}
}

func actOf(s string) ch.Activity {
	if s == "active" {
		return ch.Active
	}
	return ch.Passive
}

// Signals directions must be derived and consistent.
func TestSpecSignals(t *testing.T) {
	sp := compile(t, "seq", `(rep (enc-early (p-to-p passive P)
	   (seq (p-to-p active A1) (p-to-p active A2))))`)
	wantIn := []string{"A1_a", "A2_a", "P_r"}
	wantOut := []string{"A1_r", "A2_r", "P_a"}
	if strings.Join(sp.Inputs, ",") != strings.Join(wantIn, ",") {
		t.Fatalf("inputs %v", sp.Inputs)
	}
	if strings.Join(sp.Outputs, ",") != strings.Join(wantOut, ",") {
		t.Fatalf("outputs %v", sp.Outputs)
	}
}

// The same signal used with conflicting directions is an error.
func TestConflictingDirections(t *testing.T) {
	// Channel e is passive in one place and active in another: its
	// request would be both input and output.
	body := &ch.Op{Kind: ch.Seq,
		A: &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "e"},
		B: &ch.Chan{Kind: ch.PToP, Act: ch.Active, Name: "e"},
	}
	_, err := CompileLoose(&ch.Program{Name: "conflict", Body: &ch.Rep{Body: &ch.Op{
		Kind: ch.EncEarly,
		A:    &ch.Chan{Kind: ch.PToP, Act: ch.Passive, Name: "p"},
		B:    body,
	}}})
	if err == nil || !strings.Contains(err.Error(), "both input and output") {
		t.Fatalf("got %v", err)
	}
}

// A shared tail after an external choice: the builder unrolls the b
// handshake per branch (choice branches carry the remainder), and the
// bisimulation state minimizer merges the identical tails back.
func TestChoiceTailsUnrollAndMinimize(t *testing.T) {
	sp := compile(t, "conv", `(rep (enc-early (p-to-p passive go)
	    (seq (mutex (enc-early (p-to-p passive a1) (p-to-p active q1))
	                (enc-early (p-to-p passive a2) (p-to-p active q2)))
	         (p-to-p active b))))`)
	if err := sp.Check(); err != nil {
		t.Fatal(err)
	}
	if sp.NStates != 13 {
		t.Fatalf("unexpected unrolled size %d:\n%s", sp.NStates, sp)
	}
	min, err := minimalist.MinimizeStates(sp)
	if err != nil {
		t.Fatal(err)
	}
	// The three b-tail states (b pending, b acked, completing) are
	// bisimilar across the two branches and must merge: 13 -> 10.
	if min.NStates != 10 {
		t.Fatalf("minimized to %d states, want 10:\n%s", min.NStates, min)
	}
}

package bm

import "fmt"

// Kind classifies a Burst-Mode well-formedness violation. The kinds
// map one-to-one onto bmlint's BM-error codes; keeping the
// classification here (rather than in bmlint) lets Check and bmlint
// share a single accumulating implementation without an import cycle.
type Kind int

const (
	// KindEmptyInput: an arc's input burst is empty.
	KindEmptyInput Kind = iota
	// KindRole: an input signal used as an output or vice versa.
	KindRole
	// KindDuplicate: a signal appears twice in one burst.
	KindDuplicate
	// KindMaximalSet: two arcs from one state have comparable input
	// bursts, so the machine cannot tell which burst completed.
	KindMaximalSet
	// KindPolarity: a transition toggles a signal to the value it
	// already holds on a reachable path.
	KindPolarity
	// KindEntryValues: a state is entered with two different
	// signal-value vectors (Burst-Mode machines are deterministic in
	// total state).
	KindEntryValues
	// KindUnreachable: a state is unreachable from the start state.
	KindUnreachable
	// KindTerminal: a state has no outgoing arcs (controllers are
	// non-terminating).
	KindTerminal
	// KindStart: the start state is out of range. Check used to crash
	// on such specs rather than report; the accumulating checker
	// classifies them (hand-written .bms files can carry anything).
	KindStart
)

// Violation is one Burst-Mode well-formedness violation: its kind,
// where it lives (a state, an arc, a signal — -1/"" when not
// applicable), and the exact message Check has always reported.
type Violation struct {
	Kind  Kind
	State int    // state involved, -1 when none; arc violations carry the arc's From state
	Arc   int    // index into Spec.Arcs, -1 when not arc-specific
	Sig   string // signal name when signal-specific
	Msg   string
}

func (sp *Spec) violationf(k Kind, state, arc int, sig, format string, args ...any) Violation {
	return Violation{Kind: k, State: state, Arc: arc, Sig: sig, Msg: fmt.Sprintf(format, args...)}
}

// Violations checks every Burst-Mode well-formedness condition (see
// Check for the list) and returns all violations found, in the order
// Check has always tested them: per-arc burst checks, the maximal-set
// property, polarity/entry consistency by BFS over (state, values),
// then reachability and termination per state. Check returns exactly
// the first element; bmlint reports them all.
//
// The BFS keeps going after a violation (applying the transition as
// written), so downstream findings on a broken spec are best-effort —
// later violations can be knock-on effects of earlier ones.
func (sp *Spec) Violations() []Violation {
	var vs []Violation
	inSet := map[string]bool{}
	for _, s := range sp.Inputs {
		inSet[s] = true
	}
	outSet := map[string]bool{}
	for _, s := range sp.Outputs {
		outSet[s] = true
	}
	for i, a := range sp.Arcs {
		if len(a.In) == 0 {
			vs = append(vs, sp.violationf(KindEmptyInput, a.From, i, "",
				"arc %s has an empty input burst", a))
		}
		seen := map[string]bool{}
		for _, s := range a.In {
			if !inSet[s.Name] {
				vs = append(vs, sp.violationf(KindRole, a.From, i, s.Name,
					"arc %s: %s is not an input", a, s.Name))
			}
			if seen[s.Name] {
				vs = append(vs, sp.violationf(KindDuplicate, a.From, i, s.Name,
					"arc %s: signal %s appears twice in input burst", a, s.Name))
			}
			seen[s.Name] = true
		}
		seen = map[string]bool{}
		for _, s := range a.Out {
			if !outSet[s.Name] {
				vs = append(vs, sp.violationf(KindRole, a.From, i, s.Name,
					"arc %s: %s is not an output", a, s.Name))
			}
			if seen[s.Name] {
				vs = append(vs, sp.violationf(KindDuplicate, a.From, i, s.Name,
					"arc %s: signal %s appears twice in output burst", a, s.Name))
			}
			seen[s.Name] = true
		}
	}
	// Maximal-set property.
	for s := 0; s < sp.NStates; s++ {
		arcs := sp.ArcsFrom(s)
		for i := 0; i < len(arcs); i++ {
			for j := i + 1; j < len(arcs); j++ {
				if arcs[i].In.SubsetOf(arcs[j].In) || arcs[j].In.SubsetOf(arcs[i].In) {
					vs = append(vs, sp.violationf(KindMaximalSet, s, -1, "",
						"state %d violates the maximal-set property: %q vs %q",
						s, arcs[i].In.String(), arcs[j].In.String()))
				}
			}
		}
	}
	// Polarity consistency + reachability, by BFS over (state, values).
	// Values are tracked per specification state: a state must be
	// entered with a unique signal-value vector (Burst-Mode machines
	// are deterministic in total state).
	from := make([][]int, sp.NStates)
	for i, a := range sp.Arcs {
		if a.From >= 0 && a.From < sp.NStates {
			from[a.From] = append(from[a.From], i)
		}
	}
	values := make([]map[string]bool, sp.NStates)
	start := map[string]bool{}
	for _, s := range sp.Inputs {
		start[s] = false
	}
	for _, s := range sp.Outputs {
		start[s] = false
	}
	if sp.Start < 0 || sp.Start >= sp.NStates {
		vs = append(vs, sp.violationf(KindStart, sp.Start, -1, "",
			"start state %d out of range (spec has %d states)", sp.Start, sp.NStates))
	} else {
		values[sp.Start] = start
		queue := []int{sp.Start}
		reached := map[int]bool{sp.Start: true}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			v := values[s]
			for _, ai := range from[s] {
				a := sp.Arcs[ai]
				next := cloneVals(v)
				for _, sig := range append(a.In.Clone(), a.Out...) {
					if next[sig.Name] == sig.Rise {
						vs = append(vs, sp.violationf(KindPolarity, a.From, ai, sig.Name,
							"arc %s: transition %s but %s already holds value %v",
							a, sig, sig.Name, boolBit(next[sig.Name])))
					}
					next[sig.Name] = sig.Rise
				}
				if a.To < 0 || a.To >= sp.NStates {
					continue
				}
				if values[a.To] == nil {
					values[a.To] = next
				} else if !sameVals(values[a.To], next) {
					vs = append(vs, sp.violationf(KindEntryValues, a.To, ai, "",
						"state %d entered with inconsistent signal values via arc %s", a.To, a))
				}
				if !reached[a.To] {
					reached[a.To] = true
					queue = append(queue, a.To)
				}
			}
		}
		for s := 0; s < sp.NStates; s++ {
			if !reached[s] {
				vs = append(vs, sp.violationf(KindUnreachable, s, -1, "",
					"state %d is unreachable", s))
			}
			if len(from[s]) == 0 {
				vs = append(vs, sp.violationf(KindTerminal, s, -1, "",
					"state %d has no outgoing arcs", s))
			}
		}
	}
	return vs
}

// Package bm models Burst-Mode (BM) asynchronous controller
// specifications (Nowick 1993; Fuhrer & Nowick 2001), the target of the
// CH-to-BMS compilation path.
//
// A BM specification is a Mealy-style machine: a set of states and arcs,
// each arc labelled with an input burst followed by an output burst. The
// machine waits for the complete input burst (transitions may arrive in
// any order), then fires the output burst and moves to the next state.
package bm

import (
	"fmt"
	"sort"
	"strings"
)

// Sig is a signal edge within a burst, e.g. "a_r+".
type Sig struct {
	Name string
	Rise bool
}

func (s Sig) String() string {
	if s.Rise {
		return s.Name + "+"
	}
	return s.Name + "-"
}

// Burst is a set of signal edges. Order is canonical (sorted by name).
type Burst []Sig

func (b Burst) String() string {
	parts := make([]string, len(b))
	for i, s := range b {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Sort orders the burst canonically by signal name.
func (b Burst) Sort() {
	sort.Slice(b, func(i, j int) bool { return b[i].Name < b[j].Name })
}

// Contains reports whether the burst includes the given edge.
func (b Burst) Contains(s Sig) bool {
	for _, x := range b {
		if x == s {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every edge of b appears in other.
func (b Burst) SubsetOf(other Burst) bool {
	for _, s := range b {
		if !other.Contains(s) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the burst.
func (b Burst) Clone() Burst { return append(Burst(nil), b...) }

// Arc is a specification arc: on input burst In (complete), emit output
// burst Out and move From -> To.
type Arc struct {
	From, To int
	In, Out  Burst
}

func (a Arc) String() string {
	return fmt.Sprintf("%d -> %d : %s / %s", a.From, a.To, a.In, a.Out)
}

// Spec is a Burst-Mode specification.
type Spec struct {
	Name    string
	Inputs  []string // input signal names, sorted
	Outputs []string // output signal names, sorted
	Start   int      // start state
	NStates int
	Arcs    []Arc
}

// ArcsFrom returns the arcs leaving state s.
func (sp *Spec) ArcsFrom(s int) []Arc {
	var out []Arc
	for _, a := range sp.Arcs {
		if a.From == s {
			out = append(out, a)
		}
	}
	return out
}

// IsInput reports whether name is an input signal of the spec.
func (sp *Spec) IsInput(name string) bool {
	for _, in := range sp.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// String renders the spec in a .bms-style text format:
//
//	name <name>
//	input <sig> 0
//	output <sig> 0
//	<from> <to> <in-burst> | <out-burst>
func (sp *Spec) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "name %s\n", sp.Name)
	for _, in := range sp.Inputs {
		fmt.Fprintf(&sb, "input %s 0\n", in)
	}
	for _, out := range sp.Outputs {
		fmt.Fprintf(&sb, "output %s 0\n", out)
	}
	for _, a := range sp.Arcs {
		fmt.Fprintf(&sb, "%d %d %s | %s\n", a.From, a.To, a.In, a.Out)
	}
	return sb.String()
}

// Parse reads the .bms-style text format produced by String.
func Parse(src string) (*Spec, error) {
	sp := &Spec{}
	maxState := -1
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("bm: line %d: name takes one argument", lineNo+1)
			}
			sp.Name = fields[1]
		case "input", "output":
			if len(fields) < 2 {
				return nil, fmt.Errorf("bm: line %d: %s takes a signal name", lineNo+1, fields[0])
			}
			if fields[0] == "input" {
				sp.Inputs = append(sp.Inputs, fields[1])
			} else {
				sp.Outputs = append(sp.Outputs, fields[1])
			}
		default:
			// <from> <to> edges... | edges...
			var from, to int
			if _, err := fmt.Sscanf(fields[0], "%d", &from); err != nil {
				return nil, fmt.Errorf("bm: line %d: bad state %q", lineNo+1, fields[0])
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("bm: line %d: missing target state", lineNo+1)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &to); err != nil {
				return nil, fmt.Errorf("bm: line %d: bad state %q", lineNo+1, fields[1])
			}
			arc := Arc{From: from, To: to}
			inBurst := true
			for _, f := range fields[2:] {
				if f == "|" {
					inBurst = false
					continue
				}
				sig, err := parseSig(f)
				if err != nil {
					return nil, fmt.Errorf("bm: line %d: %v", lineNo+1, err)
				}
				if inBurst {
					arc.In = append(arc.In, sig)
				} else {
					arc.Out = append(arc.Out, sig)
				}
			}
			arc.In.Sort()
			arc.Out.Sort()
			sp.Arcs = append(sp.Arcs, arc)
			if from > maxState {
				maxState = from
			}
			if to > maxState {
				maxState = to
			}
		}
	}
	sp.NStates = maxState + 1
	sort.Strings(sp.Inputs)
	sort.Strings(sp.Outputs)
	return sp, nil
}

func parseSig(s string) (Sig, error) {
	if len(s) < 2 {
		return Sig{}, fmt.Errorf("bad edge %q", s)
	}
	switch s[len(s)-1] {
	case '+':
		return Sig{Name: s[:len(s)-1], Rise: true}, nil
	case '-':
		return Sig{Name: s[:len(s)-1], Rise: false}, nil
	}
	return Sig{}, fmt.Errorf("edge %q must end in + or -", s)
}

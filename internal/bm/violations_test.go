package bm

import (
	"errors"
	"strings"
	"testing"
)

// twoState returns a minimal well-formed two-state machine:
// 0 -> 1 : a+ / y+ ; 1 -> 0 : a- / y-.
func twoState() *Spec {
	return &Spec{
		Name:    "two",
		Inputs:  []string{"a"},
		Outputs: []string{"y"},
		NStates: 2,
		Arcs: []Arc{
			{From: 0, To: 1, In: Burst{{Name: "a", Rise: true}}, Out: Burst{{Name: "y", Rise: true}}},
			{From: 1, To: 0, In: Burst{{Name: "a", Rise: false}}, Out: Burst{{Name: "y", Rise: false}}},
		},
	}
}

func brokenSpecs() map[string]*Spec {
	empty := twoState()
	empty.Arcs[0].In = nil

	role := twoState()
	role.Arcs[0].In = Burst{{Name: "y", Rise: true}}

	dup := twoState()
	dup.Arcs[0].Out = Burst{{Name: "y", Rise: true}, {Name: "y", Rise: true}}

	maximal := twoState()
	maximal.Inputs = []string{"a", "b"}
	maximal.Arcs = append(maximal.Arcs, Arc{From: 0, To: 1,
		In:  Burst{{Name: "a", Rise: true}, {Name: "b", Rise: true}},
		Out: Burst{{Name: "y", Rise: true}}})

	polarity := twoState()
	polarity.Arcs[1].In = Burst{{Name: "a", Rise: true}} // a already 1 in state 1

	unreachable := twoState()
	unreachable.NStates = 3
	unreachable.Arcs = append(unreachable.Arcs, Arc{From: 2, To: 0,
		In: Burst{{Name: "a", Rise: true}}})

	terminal := twoState()
	terminal.Arcs = terminal.Arcs[:1] // state 1 has no way out

	badStart := twoState()
	badStart.Start = 7

	return map[string]*Spec{
		"empty-input":  empty,
		"role":         role,
		"duplicate":    dup,
		"maximal-set":  maximal,
		"polarity":     polarity,
		"unreachable":  unreachable,
		"terminal":     terminal,
		"start-range":  badStart,
		"reconvergent": reconvergent(),
	}
}

// reconvergent builds a machine where two paths reach state 3 with
// different values of y: 0 -a+-> 1 -b+/y+-> 3 vs 0 -b+-> 2 -a+-> 3.
func reconvergent() *Spec {
	b := func(name string, rise bool) Burst { return Burst{{Name: name, Rise: rise}} }
	return &Spec{
		Name:    "reconv",
		Inputs:  []string{"a", "b"},
		Outputs: []string{"y"},
		NStates: 4,
		Arcs: []Arc{
			{From: 0, To: 1, In: b("a", true)},
			{From: 0, To: 2, In: b("b", true)},
			{From: 1, To: 3, In: b("b", true), Out: b("y", true)},
			{From: 2, To: 3, In: b("a", true)},
			{From: 3, To: 0, In: Burst{{Name: "a", Rise: false}, {Name: "b", Rise: false}}},
		},
	}
}

// TestCheckViolationsAgreement pins the satellite invariant: Check is
// a thin wrapper over Violations, so the first accumulated violation
// is byte-identical to Check's error on every kind of broken spec,
// and clean specs are clean both ways.
func TestCheckViolationsAgreement(t *testing.T) {
	for name, sp := range brokenSpecs() {
		vs := sp.Violations()
		if len(vs) == 0 {
			t.Errorf("%s: Violations found nothing", name)
			continue
		}
		err := sp.Check()
		if err == nil {
			t.Errorf("%s: Check passed but Violations found %d", name, len(vs))
			continue
		}
		var ce *CheckError
		if !errors.As(err, &ce) {
			t.Errorf("%s: Check error type %T", name, err)
			continue
		}
		if ce.Msg != vs[0].Msg {
			t.Errorf("%s: Check = %q, Violations[0] = %q", name, ce.Msg, vs[0].Msg)
		}
	}
	clean := twoState()
	if vs := clean.Violations(); len(vs) != 0 {
		t.Errorf("clean spec: Violations = %v", vs)
	}
	if err := clean.Check(); err != nil {
		t.Errorf("clean spec: Check = %v", err)
	}
}

func TestViolationsAccumulate(t *testing.T) {
	sp := twoState()
	sp.Arcs[0].In = nil                              // empty input burst
	sp.Arcs[1].In = Burst{{Name: "y", Rise: false}}  // output used as input
	sp.Arcs[1].Out = Burst{{Name: "a", Rise: false}} // input used as output
	vs := sp.Violations()
	if len(vs) < 3 {
		t.Fatalf("got %d violations, want >= 3: %v", len(vs), vs)
	}
	wantKinds := []Kind{KindEmptyInput, KindRole, KindRole}
	for i, k := range wantKinds {
		if vs[i].Kind != k {
			t.Errorf("vs[%d].Kind = %v, want %v (%s)", i, vs[i].Kind, k, vs[i].Msg)
		}
	}
	if vs[0].Arc != 0 || vs[1].Arc != 1 {
		t.Errorf("arc indices = %d, %d; want 0, 1", vs[0].Arc, vs[1].Arc)
	}
}

func TestViolationKinds(t *testing.T) {
	want := map[string]Kind{
		"empty-input":  KindEmptyInput,
		"role":         KindRole,
		"duplicate":    KindDuplicate,
		"maximal-set":  KindMaximalSet,
		"polarity":     KindPolarity,
		"unreachable":  KindUnreachable,
		"terminal":     KindTerminal,
		"start-range":  KindStart,
		"reconvergent": KindEntryValues,
	}
	for name, sp := range brokenSpecs() {
		vs := sp.Violations()
		if len(vs) == 0 {
			t.Errorf("%s: no violations", name)
			continue
		}
		found := false
		for _, v := range vs {
			if v.Kind == want[name] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: kinds %v do not include %v", name, vs, want[name])
		}
	}
}

// TestStateValuesPolarityConflict covers StateValues' error paths:
// a polarity conflict on a cycle and inconsistent entry values on
// reconvergent paths both surface as errors, not bogus vectors.
func TestStateValuesPolarityConflict(t *testing.T) {
	sp := twoState()
	sp.Arcs[1].In = Burst{{Name: "a", Rise: true}}
	vals, err := sp.StateValues()
	if err == nil {
		t.Fatalf("StateValues passed with vals %v", vals)
	}
	if !strings.Contains(err.Error(), "already holds value 1") {
		t.Errorf("error = %v, want polarity message", err)
	}
}

func TestStateValuesReconvergentConflict(t *testing.T) {
	vals, err := reconvergent().StateValues()
	if err == nil {
		t.Fatalf("StateValues passed with vals %v", vals)
	}
	if !strings.Contains(err.Error(), "inconsistent signal values") {
		t.Errorf("error = %v, want entry-values message", err)
	}
}

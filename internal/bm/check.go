package bm

import (
	"fmt"
	"sort"
)

// CheckError reports a Burst-Mode well-formedness violation.
type CheckError struct {
	Spec string
	Msg  string
}

func (e *CheckError) Error() string { return fmt.Sprintf("bm: %s: %s", e.Spec, e.Msg) }

func (sp *Spec) errf(format string, args ...any) error {
	return &CheckError{Spec: sp.Name, Msg: fmt.Sprintf(format, args...)}
}

// Check verifies the Burst-Mode well-formedness conditions:
//
//  1. every arc's input burst is non-empty;
//  2. outputs never appear in input bursts and vice versa;
//  3. the maximal-set property: for any two distinct arcs leaving the
//     same state, neither input burst is a subset of the other (so the
//     machine can always tell which burst has completed);
//  4. polarity consistency: starting from the all-zero initial values,
//     every transition on every reachable path toggles its signal from
//     the value it actually holds (no x+ when x is already 1);
//  5. every reachable state has at least one outgoing arc (our
//     controllers are non-terminating), and all states are reachable.
func (sp *Spec) Check() error {
	inSet := map[string]bool{}
	for _, s := range sp.Inputs {
		inSet[s] = true
	}
	outSet := map[string]bool{}
	for _, s := range sp.Outputs {
		outSet[s] = true
	}
	for _, a := range sp.Arcs {
		if len(a.In) == 0 {
			return sp.errf("arc %s has an empty input burst", a)
		}
		seen := map[string]bool{}
		for _, s := range a.In {
			if !inSet[s.Name] {
				return sp.errf("arc %s: %s is not an input", a, s.Name)
			}
			if seen[s.Name] {
				return sp.errf("arc %s: signal %s appears twice in input burst", a, s.Name)
			}
			seen[s.Name] = true
		}
		seen = map[string]bool{}
		for _, s := range a.Out {
			if !outSet[s.Name] {
				return sp.errf("arc %s: %s is not an output", a, s.Name)
			}
			if seen[s.Name] {
				return sp.errf("arc %s: signal %s appears twice in output burst", a, s.Name)
			}
			seen[s.Name] = true
		}
	}
	// Maximal-set property.
	for s := 0; s < sp.NStates; s++ {
		arcs := sp.ArcsFrom(s)
		for i := 0; i < len(arcs); i++ {
			for j := i + 1; j < len(arcs); j++ {
				if arcs[i].In.SubsetOf(arcs[j].In) || arcs[j].In.SubsetOf(arcs[i].In) {
					return sp.errf("state %d violates the maximal-set property: %q vs %q",
						s, arcs[i].In.String(), arcs[j].In.String())
				}
			}
		}
	}
	// Polarity consistency + reachability, by BFS over (state, values).
	// Values are tracked per specification state: a state must be
	// entered with a unique signal-value vector (Burst-Mode machines
	// are deterministic in total state).
	values := make([]map[string]bool, sp.NStates)
	start := map[string]bool{}
	for _, s := range sp.Inputs {
		start[s] = false
	}
	for _, s := range sp.Outputs {
		start[s] = false
	}
	values[sp.Start] = start
	queue := []int{sp.Start}
	reached := map[int]bool{sp.Start: true}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		v := values[s]
		for _, a := range sp.ArcsFrom(s) {
			next := cloneVals(v)
			for _, sig := range append(a.In.Clone(), a.Out...) {
				if next[sig.Name] == sig.Rise {
					return sp.errf("arc %s: transition %s but %s already holds value %v",
						a, sig, sig.Name, boolBit(next[sig.Name]))
				}
				next[sig.Name] = sig.Rise
			}
			if values[a.To] == nil {
				values[a.To] = next
			} else if !sameVals(values[a.To], next) {
				return sp.errf("state %d entered with inconsistent signal values via arc %s", a.To, a)
			}
			if !reached[a.To] {
				reached[a.To] = true
				queue = append(queue, a.To)
			}
		}
	}
	for s := 0; s < sp.NStates; s++ {
		if !reached[s] {
			return sp.errf("state %d is unreachable", s)
		}
		if len(sp.ArcsFrom(s)) == 0 {
			return sp.errf("state %d has no outgoing arcs", s)
		}
	}
	return nil
}

// StateValues returns, for each state, the signal-value vector with
// which the state is entered (inputs and outputs, after the entering
// arc's bursts complete). Valid only for specs that pass Check.
func (sp *Spec) StateValues() ([]map[string]bool, error) {
	if err := sp.Check(); err != nil {
		return nil, err
	}
	values := make([]map[string]bool, sp.NStates)
	start := map[string]bool{}
	for _, s := range sp.Inputs {
		start[s] = false
	}
	for _, s := range sp.Outputs {
		start[s] = false
	}
	values[sp.Start] = start
	queue := []int{sp.Start}
	seen := map[int]bool{sp.Start: true}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, a := range sp.ArcsFrom(s) {
			if seen[a.To] {
				continue
			}
			next := cloneVals(values[s])
			for _, sig := range append(a.In.Clone(), a.Out...) {
				next[sig.Name] = sig.Rise
			}
			values[a.To] = next
			seen[a.To] = true
			queue = append(queue, a.To)
		}
	}
	return values, nil
}

func cloneVals(v map[string]bool) map[string]bool {
	out := make(map[string]bool, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

func sameVals(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Signals returns all signal names (inputs then outputs), sorted.
func (sp *Spec) Signals() []string {
	out := append(append([]string{}, sp.Inputs...), sp.Outputs...)
	sort.Strings(out)
	return out
}

package bm

import (
	"fmt"
	"sort"
)

// CheckError reports a Burst-Mode well-formedness violation.
type CheckError struct {
	Spec string
	Msg  string
}

func (e *CheckError) Error() string { return fmt.Sprintf("bm: %s: %s", e.Spec, e.Msg) }

// Check verifies the Burst-Mode well-formedness conditions:
//
//  1. every arc's input burst is non-empty;
//  2. outputs never appear in input bursts and vice versa;
//  3. the maximal-set property: for any two distinct arcs leaving the
//     same state, neither input burst is a subset of the other (so the
//     machine can always tell which burst has completed);
//  4. polarity consistency: starting from the all-zero initial values,
//     every transition on every reachable path toggles its signal from
//     the value it actually holds (no x+ when x is already 1);
//  5. every reachable state has at least one outgoing arc (our
//     controllers are non-terminating), and all states are reachable.
//
// Check is a thin wrapper over Violations — the accumulating checker
// shared with bmlint — returning the first violation found, so the
// two can never disagree on what is well-formed.
func (sp *Spec) Check() error {
	if vs := sp.Violations(); len(vs) > 0 {
		return &CheckError{Spec: sp.Name, Msg: vs[0].Msg}
	}
	return nil
}

// StateValues returns, for each state, the signal-value vector with
// which the state is entered (inputs and outputs, after the entering
// arc's bursts complete). Valid only for specs that pass Check.
func (sp *Spec) StateValues() ([]map[string]bool, error) {
	if err := sp.Check(); err != nil {
		return nil, err
	}
	values := make([]map[string]bool, sp.NStates)
	start := map[string]bool{}
	for _, s := range sp.Inputs {
		start[s] = false
	}
	for _, s := range sp.Outputs {
		start[s] = false
	}
	values[sp.Start] = start
	queue := []int{sp.Start}
	seen := map[int]bool{sp.Start: true}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, a := range sp.ArcsFrom(s) {
			if seen[a.To] {
				continue
			}
			next := cloneVals(values[s])
			for _, sig := range append(a.In.Clone(), a.Out...) {
				next[sig.Name] = sig.Rise
			}
			values[a.To] = next
			seen[a.To] = true
			queue = append(queue, a.To)
		}
	}
	return values, nil
}

func cloneVals(v map[string]bool) map[string]bool {
	out := make(map[string]bool, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

func sameVals(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Signals returns all signal names (inputs then outputs), sorted.
func (sp *Spec) Signals() []string {
	out := append(append([]string{}, sp.Inputs...), sp.Outputs...)
	sort.Strings(out)
	return out
}

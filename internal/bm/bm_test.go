package bm

import (
	"strings"
	"testing"
)

// A tiny valid spec: a C-element-ish passivator.
const passivatorBMS = `
name passivator
input a_r 0
input b_r 0
output a_a 0
output b_a 0
0 1 a_r+ b_r+ | a_a+ b_a+
1 0 a_r- b_r- | a_a- b_a-
`

func TestParseAndString(t *testing.T) {
	sp, err := Parse(passivatorBMS)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "passivator" || sp.NStates != 2 || len(sp.Arcs) != 2 {
		t.Fatalf("%+v", sp)
	}
	if err := sp.Check(); err != nil {
		t.Fatal(err)
	}
	// Round trip.
	sp2, err := Parse(sp.String())
	if err != nil {
		t.Fatal(err)
	}
	if sp2.String() != sp.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", sp, sp2)
	}
}

func TestCheckEmptyInputBurst(t *testing.T) {
	sp, err := Parse("name x\ninput a 0\noutput b 0\n0 1 a+ | b+\n1 0 | b-\n")
	if err != nil {
		t.Fatal(err)
	}
	err = sp.Check()
	if err == nil || !strings.Contains(err.Error(), "empty input burst") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckMaximalSet(t *testing.T) {
	// Arc 2's input burst {a+} is a subset of arc 1's {a+, b+}.
	sp, err := Parse(`name x
input a 0
input b 0
output y 0
0 1 a+ b+ | y+
0 2 a+ | y+
1 0 a- b- | y-
2 0 a- | y-
`)
	if err != nil {
		t.Fatal(err)
	}
	err = sp.Check()
	if err == nil || !strings.Contains(err.Error(), "maximal-set") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckPolarity(t *testing.T) {
	// a rises twice in a row.
	sp, err := Parse("name x\ninput a 0\noutput y 0\n0 1 a+ | y+\n1 0 a+ | y-\n")
	if err != nil {
		t.Fatal(err)
	}
	err = sp.Check()
	if err == nil || !strings.Contains(err.Error(), "already holds") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckUnreachable(t *testing.T) {
	sp, err := Parse("name x\ninput a 0\noutput y 0\n0 0 a+ | y+\n")
	if err != nil {
		t.Fatal(err)
	}
	// a+ then a+ again on the self-loop: polarity error, so build a
	// proper two-phase loop plus an unreachable state.
	sp, err = Parse(`name x
input a 0
output y 0
0 1 a+ | y+
1 0 a- | y-
2 3 a+ | y+
3 2 a- | y-
`)
	if err != nil {
		t.Fatal(err)
	}
	err = sp.Check()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckDeadState(t *testing.T) {
	sp, err := Parse("name x\ninput a 0\noutput y 0\n0 1 a+ | y+\n")
	if err != nil {
		t.Fatal(err)
	}
	err = sp.Check()
	if err == nil || !strings.Contains(err.Error(), "no outgoing") {
		t.Fatalf("got %v", err)
	}
}

func TestCheckWrongDirection(t *testing.T) {
	sp, err := Parse("name x\ninput a 0\noutput y 0\n0 1 y+ | a+\n1 0 y- | a-\n")
	if err != nil {
		t.Fatal(err)
	}
	if err = sp.Check(); err == nil {
		t.Fatal("expected direction error")
	}
}

func TestCheckDuplicateSignalInBurst(t *testing.T) {
	sp := &Spec{Name: "x", Inputs: []string{"a"}, Outputs: []string{"y"}, NStates: 2,
		Arcs: []Arc{
			{From: 0, To: 1, In: Burst{{"a", true}, {"a", true}}, Out: Burst{{"y", true}}},
			{From: 1, To: 0, In: Burst{{"a", false}}, Out: Burst{{"y", false}}},
		}}
	if err := sp.Check(); err == nil {
		t.Fatal("expected duplicate-signal error")
	}
}

func TestStateValues(t *testing.T) {
	sp, err := Parse(passivatorBMS)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := sp.StateValues()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0]["a_r"] || vals[0]["a_a"] {
		t.Fatalf("state 0 should be all zero: %v", vals[0])
	}
	if !vals[1]["a_r"] || !vals[1]["b_a"] {
		t.Fatalf("state 1: %v", vals[1])
	}
}

func TestBurstOps(t *testing.T) {
	b := Burst{{"x", true}, {"a", false}}
	b.Sort()
	if b[0].Name != "a" {
		t.Fatalf("sort failed: %v", b)
	}
	if !b.Contains(Sig{"x", true}) || b.Contains(Sig{"x", false}) {
		t.Fatal("contains failed")
	}
	if !b.SubsetOf(Burst{{"a", false}, {"x", true}, {"z", true}}) {
		t.Fatal("subset failed")
	}
	if (Burst{{"q", true}}).SubsetOf(b) {
		t.Fatal("subset false positive")
	}
	c := b.Clone()
	c[0].Name = "mutated"
	if b[0].Name != "a" {
		t.Fatal("clone aliases")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"name",
		"0 x a+ | y+",
		"x 1 a+ | y+",
		"0 1 a | y+",
		"0",
		"input",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestIsInputAndSignals(t *testing.T) {
	sp, err := Parse(passivatorBMS)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.IsInput("a_r") || sp.IsInput("a_a") {
		t.Fatal("IsInput wrong")
	}
	sigs := sp.Signals()
	if len(sigs) != 4 || sigs[0] != "a_a" {
		t.Fatalf("signals %v", sigs)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"balsabm/internal/api"
	"balsabm/internal/designs"
	"balsabm/internal/flow"
	"balsabm/internal/store"
)

// oneSequencer is a second, distinct control netlist so tests can
// submit two jobs with different dedup keys.
const oneSequencer = `
(program solo (rep (enc-early (p-to-p passive root)
    (seq (p-to-p active a1) (p-to-p active a2)))))
`

// TestListStableOrder pins the Manager.List contract: jobs come back
// in submission order (ascending IDs), however concurrently they were
// submitted. The journal records submissions in the same order (inside
// the same critical section), so this is also the order a restarted
// daemon reports.
func TestListStableOrder(t *testing.T) {
	m := testManagerNoWorkers(64)
	defer m.cancel()
	req := api.JobRequest{Kind: api.KindSynth, Source: twoSequencers}

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Submit(req); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	list := m.List()
	if len(list) != n {
		t.Fatalf("List returned %d jobs, want %d", len(list), n)
	}
	for i, j := range list {
		want := fmt.Sprintf("j%05d", i+1)
		if j.ID != want {
			t.Fatalf("List[%d].ID = %s, want %s (stable submission order)", i, j.ID, want)
		}
	}
}

// submitCustom enqueues a job with a caller-supplied executor, exactly
// as Submit would, so tests can control execution timing directly.
func submitCustom(m *Manager, key string, exec func(context.Context, *flow.Metrics, flow.CheckpointSink, flow.ControllerCache) (*api.JobResult, error)) *Job {
	ctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		Key:    key,
		ctx:    ctx,
		cancel: cancel,
		events: newBroker(m.cfg.History),
		met:    &flow.Metrics{},
		exec:   exec,
		state:  api.StateQueued,
		done:   make(chan struct{}),
	}
	m.mu.Lock()
	m.nextID++
	j.ID = fmt.Sprintf("j%05d", m.nextID)
	j.created = m.cfg.Clock()
	m.queue <- j
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	return j
}

// TestCancelRunningForgetsMemo is the regression test for the memo
// poisoning hazard: cancelling a running job must Forget its dedup key,
// so resubmitting the identical request executes afresh instead of
// being served the cancelled run's error.
func TestCancelRunningForgetsMemo(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	var runs atomic.Int32
	started := make(chan struct{})
	exec := func(ctx context.Context, met *flow.Metrics, ck flow.CheckpointSink, ctl flow.ControllerCache) (*api.JobResult, error) {
		if runs.Add(1) == 1 {
			close(started)
			<-ctx.Done() // first run blocks until cancelled
			return nil, ctx.Err()
		}
		return &api.JobResult{Kind: api.KindSynth}, nil
	}

	j1 := submitCustom(m, "memo-key", exec)
	<-started
	if !m.Cancel(j1.ID) {
		t.Fatal("Cancel returned false")
	}
	<-j1.Done()
	if st := j1.Status(); st.State != api.StateCanceled {
		t.Fatalf("cancelled job state = %s, want canceled", st.State)
	}

	j2 := submitCustom(m, "memo-key", exec)
	<-j2.Done()
	st := j2.Status()
	if st.State != api.StateDone {
		t.Fatalf("resubmitted job state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Dedup {
		t.Fatal("resubmitted job served from memo; cancelled run was not forgotten")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("executor ran %d times, want 2 (recompute after cancel)", got)
	}
}

// TestE2EWarmRestartByteIdentical proves the durable half of the
// acceptance criterion: results computed by one manager process are
// served byte-identically by the next one from the on-disk artifact
// cache — first via journal replay (the job reappears done), then as a
// disk-tier hit on resubmission, observable on /metrics.
func TestE2EWarmRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes control netlists across a restart")
	}
	dir := t.TempDir()
	req := api.JobRequest{Kind: api.KindSynth, Source: twoSequencers, Mode: api.ModeUnopt}
	req2 := api.JobRequest{Kind: api.KindSynth, Source: oneSequencer, Mode: api.ModeUnopt}

	// First daemon lifetime: run two jobs to completion.
	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Config{Workers: 2, Store: st1})
	j1, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m1.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	<-j2.Done()
	if st := j1.Status(); st.State != api.StateDone || st.Disk {
		t.Fatalf("cold run: state=%s disk=%v, want done/false", st.State, st.Disk)
	}
	ref, err := api.Encode(j1.Result())
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second lifetime, same data dir: the journal replays both jobs in
	// submission order, done, with results loading from the store.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := NewManager(Config{Workers: 2, Store: st2})
	defer m2.Close()

	list := m2.List()
	if len(list) != 2 || list[0].ID != "j00001" || list[1].ID != "j00002" {
		t.Fatalf("replayed List = %v jobs, want [j00001 j00002]", len(list))
	}
	rst := list[0].Status()
	if rst.State != api.StateDone || !rst.Disk {
		t.Fatalf("replayed job: state=%s disk=%v, want done/true", rst.State, rst.Disk)
	}
	got, err := api.Encode(list[0].Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("replayed result differs from the cold run:\n--- cold ---\n%s\n--- warm ---\n%s", ref, got)
	}

	// Resubmitting the identical request is a disk-tier hit: no flow
	// execution, byte-identical result, counted separately from the
	// in-memory dedup memo.
	j3, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j3.Done()
	st := j3.Status()
	if st.ID != "j00003" {
		t.Fatalf("post-restart ID = %s, want j00003 (ID sequence survives restarts)", st.ID)
	}
	if st.State != api.StateDone || !st.Disk || st.Dedup {
		t.Fatalf("resubmission: state=%s disk=%v dedup=%v, want done/true/false", st.State, st.Disk, st.Dedup)
	}
	got3, err := api.Encode(j3.Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got3) {
		t.Fatal("disk-served result differs from the cold run")
	}
	met := m2.Metrics()
	if met.StoreDiskHits != 1 || met.StoreMisses != 0 {
		t.Fatalf("store tiers: disk=%d misses=%d, want 1/0", met.StoreDiskHits, met.StoreMisses)
	}
	// Two job-result blobs plus the controller-grain blobs the runs
	// wrote for incremental resynthesis.
	if met.Store == nil || met.Store.Artifacts != 4 || met.Store.ControllerRefs != 2 {
		t.Fatalf("store stats = %+v, want 4 artifacts / 2 controller refs", met.Store)
	}
	text := PrometheusText(met)
	if !bytes.Contains([]byte(text), []byte(`balsabmd_store_hits_total{tier="disk"} 1`)) {
		t.Fatalf("/metrics missing disk-tier hit:\n%s", text)
	}
}

// memSink captures a flow run's checkpoints in memory so the resume
// test can stage a partial ("crashed mid-job") store.
type memSink struct {
	mu     sync.Mutex
	stages map[string][]byte
}

func (s *memSink) Load(stage string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.stages[stage]
	return d, ok
}

func (s *memSink) Save(stage string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stages[stage] = append([]byte(nil), data...)
}

// TestE2EResumeFromCheckpoint proves mid-job crash recovery: a journal
// holding a started-but-unfinished job whose cluster and unopt stages
// were checkpointed boots into a manager that re-enqueues the job,
// restores both stages (skipping their recomputation, visible in the
// stage counters), finishes the remaining opt arm, and produces a
// result byte-identical to an uninterrupted run.
func TestE2EResumeFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full flow on the systolic counter")
	}
	req := api.JobRequest{Kind: api.KindDesign, Design: "systolic-counter",
		Config: api.FlowConfig{Workers: 2}}

	// Uninterrupted reference run through a store-less manager.
	mRef := NewManager(Config{Workers: 2})
	jRef, err := mRef.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-jRef.Done()
	ref, err := api.Encode(jRef.Result())
	if err != nil {
		t.Fatal(err)
	}
	mRef.Close()

	// Capture the full checkpoint set from an in-process flow run, then
	// stage the crash state: cluster and unopt persisted, opt not.
	sink := &memSink{stages: map[string][]byte{}}
	if _, err := flow.RunDesign(designs.SystolicCounter(), &flow.Options{Workers: 2, Checkpoint: sink}); err != nil {
		t.Fatal(err)
	}
	const (
		ckCluster = "systolic-counter/" + flow.StageCluster
		ckUnopt   = "systolic-counter/" + flow.StageUnopt
	)
	for _, stage := range []string{ckCluster, ckUnopt} {
		if _, ok := sink.stages[stage]; !ok {
			t.Fatalf("flow run saved no %q checkpoint (have %v)", stage, len(sink.stages))
		}
	}

	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, key, err := prepare(req)
	if err != nil {
		t.Fatal(err)
	}
	cd := st.Checkpoints(key)
	cd.Save(ckCluster, sink.stages[ckCluster])
	cd.Save(ckUnopt, sink.stages[ckUnopt])
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	st.AppendSubmit("j00001", key, req.Kind, body, "2026-01-02T03:04:05Z")
	st.AppendStart("j00001", "2026-01-02T03:04:06Z")
	st.AppendCheckpoint("j00001", key, ckCluster)
	st.AppendCheckpoint("j00001", key, ckUnopt)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot. The job must come back, resume past its checkpoints and
	// finish with the reference bytes.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m := NewManager(Config{Workers: 2, Store: st2})
	defer m.Close()

	j, ok := m.Get("j00001")
	if !ok {
		t.Fatal("interrupted job not replayed")
	}
	<-j.Done()
	jst := j.Status()
	if jst.State != api.StateDone {
		t.Fatalf("resumed job state = %s (err %q), want done", jst.State, jst.Error)
	}
	if jst.ResumedFrom != ckUnopt {
		t.Fatalf("ResumedFrom = %q, want %q", jst.ResumedFrom, ckUnopt)
	}
	got, err := api.Encode(j.Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("resumed result differs from uninterrupted run:\n--- reference ---\n%s\n--- resumed ---\n%s", ref, got)
	}

	met := m.Metrics()
	if met.JobsResumed != 1 {
		t.Fatalf("JobsResumed = %d, want 1", met.JobsResumed)
	}
	if met.CheckpointsRestored != 2 {
		t.Fatalf("CheckpointsRestored = %d, want 2 (cluster + unopt)", met.CheckpointsRestored)
	}
	if met.CheckpointsSaved != 1 {
		t.Fatalf("CheckpointsSaved = %d, want 1 (the finishing opt arm)", met.CheckpointsSaved)
	}
	// The restored stages were skipped, not recomputed: the unopt arm's
	// simulation ran once (for the opt arm), clustering not at all.
	if s := met.Stages["simulate"]; s.Count != 1 {
		t.Fatalf("simulate ran %d times, want 1 (unopt arm restored)", s.Count)
	}
	if s := met.Stages["cluster"]; s.Count != 0 {
		t.Fatalf("cluster ran %d times, want 0 (restored from checkpoint)", s.Count)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"balsabm/internal/api"
)

// TestHazverEndpoint: POST /api/v1/hazver synthesizes the design and
// answers the static hazard verification of the merged mapped logic:
// every specified burst checked, zero HZ-errors on flow output, and
// the HZ200 static report present.
func TestHazverEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	for _, mode := range []string{api.ModeUnopt, api.ModeOpt} {
		res, err := c.Hazver(ctx, api.HazverRequest{Source: netlintTestSource, Name: "pair", Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Mode != mode {
			t.Errorf("mode %q, want %q", res.Mode, mode)
		}
		rep := res.Report
		if rep.Circuit != "pair."+mode {
			t.Errorf("circuit %q, want pair.%s", rep.Circuit, mode)
		}
		if rep.Errors != 0 {
			t.Errorf("%s: flow-emitted design has %d HZ-errors: %+v", rep.Circuit, rep.Errors, rep.Diags)
		}
		if rep.Stats.Bursts == 0 || rep.Stats.Functions == 0 {
			t.Errorf("%s: empty verification: %+v", rep.Circuit, rep.Stats)
		}
		found := false
		for _, d := range rep.Diags {
			if d.Code == "HZ200" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: missing HZ200 static report: %+v", rep.Circuit, rep.Diags)
		}
	}
}

// TestHazverEndpointByteIdentity: the raw response body must be
// byte-identical to api.Encode(RunHazver(...)) — the same bytes
// `balsabm hazver -json` prints locally.
func TestHazverEndpointByteIdentity(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Workers: 1})
	req := api.HazverRequest{Source: netlintTestSource, Name: "pair", Mode: api.ModeUnopt}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/api/v1/hazver", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, remote)
	}
	res, err := RunHazver(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	local, err := api.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, local) {
		t.Errorf("server and local bytes differ:\n--- server ---\n%s--- local ---\n%s", remote, local)
	}
}

// TestHazverEndpointRejects: unknown body fields, unparsable sources
// and unknown modes answer 400 with an error body.
func TestHazverEndpointRejects(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	resp, err := hs.Client().Post(hs.URL+"/api/v1/hazver", "application/json",
		bytes.NewReader([]byte(`{"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}

	if _, err := c.Hazver(ctx, api.HazverRequest{Source: "(not a design"}); err == nil {
		t.Error("unparsable source accepted")
	}
	if _, err := c.Hazver(ctx, api.HazverRequest{Source: netlintTestSource, Mode: "fastest"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestHazverMetricsCounters: a completed synth job feeds the per-code
// hazver counters, visible in both the JSON metrics and the Prometheus
// text export, and the synth result carries the hazver report.
func TestHazverMetricsCounters(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	res, err := c.Run(ctx, api.JobRequest{Kind: api.KindSynth, Source: netlintTestSource, Mode: api.ModeUnopt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Synth == nil || res.Synth.Hazver == nil {
		t.Fatal("synth result lacks the hazver report")
	}
	if res.Synth.Hazver.Errors != 0 || res.Synth.Hazver.Stats.Bursts == 0 {
		t.Errorf("synth hazver report unexpected: %+v", res.Synth.Hazver)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The post-mapping gate always records its HZ200 static report.
	if m.HazverDiags["HZ200"] == 0 {
		t.Fatalf("hazver diag counters missing HZ200: %+v", m.HazverDiags)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), `balsabmd_hazver_diags_total{code="HZ200"}`) {
		t.Errorf("/metrics lacks the hazver counter:\n%s", text)
	}
}

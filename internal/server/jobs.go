package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"balsabm/internal/api"
	"balsabm/internal/balsa"
	"balsabm/internal/bmlint"
	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/flow"
	"balsabm/internal/parallel"
	"balsabm/internal/store"
	"balsabm/internal/techmap"
)

// Config tunes the job manager.
type Config struct {
	// Workers is the number of jobs executing concurrently; 0 means 1.
	// Each job additionally fans its own leaf work (syntheses, probes,
	// simulations) across the flow's per-run pool, bounded by the
	// request's FlowConfig.Workers.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected (the HTTP layer answers 503). 0 means 64.
	QueueDepth int
	// History bounds the progress events retained per job for replay
	// to late stream subscribers; 0 means 512.
	History int
	// Clock supplies timestamps for job statuses; nil means time.Now.
	// Tests inject a fixed clock.
	Clock func() time.Time
	// Store, when non-nil, makes the manager durable: completed results
	// land in the content-addressed artifact cache (consulted before the
	// in-memory memo on every run), job history is journaled, in-flight
	// jobs checkpoint each completed pipeline stage, and NewManager
	// replays the journal — re-enqueueing jobs the previous process
	// never finished. The caller owns the store and closes it after
	// Manager.Close.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.History <= 0 {
		c.History = 512
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// ErrQueueFull rejects submissions when the job queue is at capacity.
var ErrQueueFull = errors.New("server: job queue full")

// Job is one unit of synthesis work moving through the queue.
type Job struct {
	ID  string
	Req api.JobRequest
	// Key is the job's dedup key digest (see requestKey).
	Key string

	ctx    context.Context
	cancel context.CancelFunc
	events *broker
	met    *flow.Metrics
	exec   func(ctx context.Context, met *flow.Metrics, ck flow.CheckpointSink, ctl flow.ControllerCache) (*api.JobResult, error)

	mu    sync.Mutex
	state string
	dedup bool
	// disk marks a result served from the on-disk artifact cache.
	disk bool
	// resumedFrom names the last checkpointed stage of a job re-enqueued
	// from the journal at boot ("" when it restarts from scratch).
	resumedFrom string
	err         string
	result      *api.JobResult
	// load lazily fetches the result of a journal-replayed done job from
	// the artifact store (nil for jobs that completed in this process).
	load     func() *api.JobResult
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{} // closed on terminal state
}

// Status snapshots the job for the wire.
func (j *Job) Status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		ID:          j.ID,
		Kind:        j.Req.Kind,
		State:       j.state,
		Dedup:       j.dedup,
		Disk:        j.disk,
		ResumedFrom: j.resumedFrom,
		BaseJobID:   j.Req.BaseJobID,
		Key:         j.Key,
		Error:       j.err,
		Created:     j.created.UTC().Format(time.RFC3339Nano),

		// Incremental resynthesis split: populated while the job's own
		// flow executes (dedup-/disk-served jobs keep zeros — they never
		// reached the synthesis layer).
		ControllersReused:        j.met.ControllersReused.Load(),
		ControllersResynthesized: j.met.ControllersResynthesized.Load(),
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// Result returns the job's result once done (nil otherwise). For jobs
// replayed done from the journal, the blob loads from the artifact
// store on first access; a blob since evicted by GC yields nil (the
// job's status stays done — resubmitting the request recomputes it).
func (j *Job) Result() *api.JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil && j.load != nil {
		j.result = j.load()
	}
	return j.result
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == api.StateDone || state == api.StateFailed || state == api.StateCanceled
}

// Manager owns the job queue: bounded-concurrency execution on top of
// per-job contexts, request deduplication through a single-flight
// memo keyed on canonical design forms, per-job progress brokers, and
// the daemon-wide counters behind /metrics.
type Manager struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *Job
	memo   parallel.Memo[*api.JobResult]
	store  *store.Store // nil = in-memory only
	// ctl is the controller-grain artifact cache attached to every
	// job's flow run (incremental resynthesis): the durable store when
	// configured, an in-process map otherwise — so an edit-compile loop
	// reuses unchanged controllers either way.
	ctl flow.ControllerCache

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int64
	// netlintDiags counts netlist diagnostics by NLxxx code across
	// every executed job: the findings its netlint gates recorded plus
	// the error findings of gates that failed the job. Exported as
	// balsabmd_netlint_diags_total{code=...}.
	netlintDiags map[string]int64
	// bmlintDiags is the same per-code tally one tier up: Burst-Mode
	// spec diagnostics (BMxxx) from the post-compile bmlint gates.
	// Exported as balsabmd_bmlint_diags_total{code=...}.
	bmlintDiags map[string]int64
	// hazverDiags tallies static hazard-verification diagnostics
	// (HZxxx) from the post-mapping hazver gates. Exported as
	// balsabmd_hazver_diags_total{code=...}.
	hazverDiags map[string]int64

	dedupHits   parallel.Counter
	dedupMisses parallel.Counter
	flowHits    parallel.Counter
	flowMisses  parallel.Counter
	minExact    parallel.Counter
	minGreedy   parallel.Counter
	enumNodes   parallel.Counter
	branchNodes parallel.Counter
	aggTimings  parallel.Timings

	// Result-cache tiers (run's lookup order: disk, then memo, then
	// fresh execution) and durability traffic.
	storeDiskHits parallel.Counter
	storeMemHits  parallel.Counter
	storeMisses   parallel.Counter
	jobsResumed   parallel.Counter
	ckptSaves     parallel.Counter
	ckptLoads     parallel.Counter

	// Incremental resynthesis split across every executed job, exported
	// as balsabmd_incremental_controllers_total{outcome=...}.
	ctlReused  parallel.Counter
	ctlResynth parallel.Counter
}

// NewManager starts a manager with cfg.Workers executor goroutines.
// With a configured store, the journal replays first: finished jobs
// reappear with their terminal states (results load lazily from the
// artifact cache), and jobs the previous process never finished are
// re-enqueued ahead of new submissions, resuming from their last
// checkpointed stage.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:          cfg,
		ctx:          ctx,
		cancel:       cancel,
		store:        cfg.Store,
		jobs:         map[string]*Job{},
		netlintDiags: map[string]int64{},
		bmlintDiags:  map[string]int64{},
		hazverDiags:  map[string]int64{},
	}
	if cfg.Store != nil {
		m.ctl = cfg.Store
	} else {
		m.ctl = flow.NewMemoryControllerCache()
	}
	var resumable []*Job
	if m.store != nil {
		resumable = m.replayJournal()
	}
	// The queue grows by the resumed backlog so replay can never
	// overflow it; new submissions still see cfg.QueueDepth slots.
	m.queue = make(chan *Job, cfg.QueueDepth+len(resumable))
	for _, j := range resumable {
		m.queue <- j
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		parallel.Go(m.worker)
	}
	return m
}

// Close cancels every job and stops the workers. In-flight flow runs
// stop at their next leaf boundary.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// Submit validates and enqueues one request. The returned job is
// already queued (or rejected with ErrQueueFull / a validation error).
func (m *Manager) Submit(req api.JobRequest) (*Job, error) {
	exec, key, err := prepare(req)
	if err != nil {
		return nil, err
	}
	// An incremental resubmission must name a job this daemon knows —
	// catching stale IDs at submission, where the client can react,
	// instead of silently running cold. The base does not change the
	// dedup key (the controller cache is consulted for every run), so
	// validation is all that happens here.
	if req.BaseJobID != "" {
		if _, ok := m.Get(req.BaseJobID); !ok {
			return nil, fmt.Errorf("server: unknown base job %q", req.BaseJobID)
		}
	}
	ctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		Req:    req,
		Key:    key,
		ctx:    ctx,
		cancel: cancel,
		events: newBroker(m.cfg.History),
		met:    &flow.Metrics{},
		exec:   exec,
		state:  api.StateQueued,
		done:   make(chan struct{}),
	}
	j.events.publish(api.Event{Type: "state", State: api.StateQueued})
	m.hookJob(j)

	m.mu.Lock()
	m.nextID++
	j.ID = fmt.Sprintf("j%05d", m.nextID)
	j.created = m.cfg.Clock()
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	// Journal the accepted submission inside the lock, so the journal's
	// record order matches ID order and a replayed List comes back in
	// the same sequence clients saw before the restart.
	if m.store != nil {
		if body, err := json.Marshal(req); err == nil {
			m.store.AppendSubmit(j.ID, j.Key, req.Kind, body, m.stamp(j.created))
		}
	}
	m.mu.Unlock()
	return j, nil
}

// hookJob forwards a job's stage completions to its progress stream
// (folding them into the daemon-wide stage totals) and streams its
// lint-gate findings. Shared by Submit and the boot-time replay.
func (m *Manager) hookJob(j *Job) {
	j.met.Timings.Notify(func(stage string, d time.Duration, s parallel.Stage) {
		m.aggTimings.Observe(stage, d)
		j.events.publish(api.Event{
			Type:        "stage",
			Stage:       stage,
			Count:       s.Count,
			TotalMicros: s.Total.Microseconds(),
		})
	})
	// Stream the lint gate's non-error findings as they are recorded.
	j.met.NotifyLint(func(f flow.LintFinding) {
		d := api.FromDiag(f.Diag)
		j.events.publish(api.Event{Type: "lint", Lint: &d})
	})
	// And the netlint gate's, tagged with the audited circuit.
	j.met.NotifyNetlint(func(f flow.NetlintFinding) {
		d := api.FromNetlintDiag(f.Diag)
		d.Circuit = f.Circuit()
		j.events.publish(api.Event{Type: "lint", Netlint: &d})
	})
	// And the bmlint gate's, tagged with the audited spec.
	j.met.NotifyBmlint(func(f flow.BmlintFinding) {
		d := api.FromBmlintDiag(f.Diag)
		d.Spec = f.Unit()
		j.events.publish(api.Event{Type: "lint", Bmlint: &d})
	})
	// And the hazver gate's, tagged with the verified circuit.
	j.met.NotifyHazver(func(f flow.HazverFinding) {
		d := api.FromHazverDiag(f.Diag)
		d.Circuit = f.Circuit()
		j.events.publish(api.Event{Type: "lint", Hazver: &d})
	})
}

// stamp formats a journal timestamp (UTC RFC3339Nano, matching the
// wire form of job statuses).
func (m *Manager) stamp(t time.Time) string {
	return t.UTC().Format(time.RFC3339Nano)
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels a job. A queued job transitions to canceled
// immediately; a running one stops at its next leaf boundary and
// transitions when its executor observes the cancellation.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	j.mu.Lock()
	if j.state == api.StateQueued {
		j.mu.Unlock()
		// A user cancellation is final: journal it so the job does not
		// come back after a restart. (Jobs cancelled by daemon shutdown
		// never get a cancel record — they stay non-terminal in the
		// journal and resume on the next boot.)
		if m.store != nil && m.ctx.Err() == nil {
			m.store.AppendCancel(j.ID, m.stamp(m.cfg.Clock()))
		}
		m.finish(j, api.StateCanceled, nil, context.Canceled)
	} else {
		j.mu.Unlock()
	}
	return true
}

// QueueDepth is the number of jobs waiting for an executor.
func (m *Manager) QueueDepth() int64 { return int64(len(m.queue)) }

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one dequeued job: the on-disk artifact cache answers
// first (tier "disk"), then the in-process single-flight memo (tier
// "memory"), and only a miss on both executes the flow — with each
// completed pipeline stage checkpointed to the store so a crashed
// daemon resumes instead of restarting.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if terminal(j.state) { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = api.StateRunning
	j.started = m.cfg.Clock()
	started := j.started
	j.mu.Unlock()
	if m.store != nil {
		m.store.AppendStart(j.ID, m.stamp(started))
	}
	j.events.publish(api.Event{Type: "state", State: api.StateRunning})

	if res := m.diskLookup(j); res != nil {
		m.storeDiskHits.Add(1)
		j.mu.Lock()
		j.disk = true
		j.mu.Unlock()
		m.journalDone(j, res)
		m.finish(j, api.StateDone, res, nil)
		return
	}

	res, hit, err := m.memo.Do(j.Key, func() (*api.JobResult, error) {
		return j.exec(j.ctx, j.met, m.sink(j), m.ctl)
	})
	if hit {
		m.dedupHits.Add(1)
		m.storeMemHits.Add(1)
		j.mu.Lock()
		j.dedup = true
		j.mu.Unlock()
	} else {
		m.dedupMisses.Add(1)
		m.storeMisses.Add(1)
		m.flowHits.Add(j.met.CacheHits.Load())
		m.flowMisses.Add(j.met.CacheMisses.Load())
		m.minExact.Add(j.met.MinimizeExact.Load())
		m.minGreedy.Add(j.met.MinimizeGreedy.Load())
		m.enumNodes.Add(j.met.EnumNodes.Load())
		m.branchNodes.Add(j.met.BranchNodes.Load())
		m.ckptSaves.Add(j.met.CheckpointSaves.Load())
		m.ckptLoads.Add(j.met.CheckpointLoads.Load())
		m.ctlReused.Add(j.met.ControllersReused.Load())
		m.ctlResynth.Add(j.met.ControllersResynthesized.Load())
		m.countNetlint(j.met.NetlintFindings(), err)
		m.countBmlint(j.met.BmlintFindings(), err)
		m.countHazver(j.met.HazverFindings(), err)
	}
	switch {
	case err == nil:
		m.journalDone(j, res)
		m.finish(j, api.StateDone, res, nil)
	case j.ctx.Err() != nil || errors.Is(err, context.Canceled):
		// A cancelled run is not a property of the design; un-memoize
		// it so the next identical submission computes afresh.
		if !hit {
			m.memo.Forget(j.Key)
		}
		// Only user cancellations are journaled as final (see Cancel);
		// a shutdown-cancelled job resumes on the next boot.
		if m.store != nil && m.ctx.Err() == nil {
			m.store.AppendCancel(j.ID, m.stamp(m.cfg.Clock()))
		}
		m.finish(j, api.StateCanceled, nil, err)
	default:
		if m.store != nil {
			m.store.AppendFail(j.ID, err.Error(), m.stamp(m.cfg.Clock()))
		}
		m.finish(j, api.StateFailed, nil, err)
	}
}

// finish moves a job to a terminal state, publishes the terminal
// event and closes its progress stream.
func (m *Manager) finish(j *Job, state string, res *api.JobResult, err error) {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.finished = m.cfg.Clock()
	if err != nil {
		j.err = err.Error()
	}
	dedup, disk := j.dedup, j.disk
	j.mu.Unlock()
	ev := api.Event{
		Type: "state", State: state, Dedup: dedup, Disk: disk,
		ControllersReused:        j.met.ControllersReused.Load(),
		ControllersResynthesized: j.met.ControllersResynthesized.Load(),
	}
	if err != nil {
		ev.Error = err.Error()
	}
	j.events.publish(ev)
	j.events.close()
	close(j.done)
	j.cancel()
}

// countNetlint folds one executed job's netlist diagnostics into the
// daemon-wide per-code counters: the non-error findings its netlint
// gates recorded, plus the error findings when the gate failed the
// job.
func (m *Manager) countNetlint(fs []flow.NetlintFinding, err error) {
	var ne *flow.NetlintError
	if len(fs) == 0 && !errors.As(err, &ne) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range fs {
		m.netlintDiags[f.Diag.Code]++
	}
	if ne != nil {
		for _, d := range ne.Diags {
			m.netlintDiags[d.Code]++
		}
	}
}

// countBmlint folds one executed job's Burst-Mode spec diagnostics
// into the daemon-wide per-code counters: the non-error findings its
// bmlint gates recorded, plus the error findings when the gate failed
// the job.
func (m *Manager) countBmlint(fs []flow.BmlintFinding, err error) {
	var be *flow.BmlintError
	if len(fs) == 0 && !errors.As(err, &be) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range fs {
		m.bmlintDiags[f.Diag.Code]++
	}
	if be != nil {
		for _, d := range be.Diags {
			m.bmlintDiags[d.Code]++
		}
	}
}

// countHazver folds one executed job's static hazard-verification
// diagnostics into the daemon-wide per-code counters: the non-error
// findings its hazver gates recorded, plus the error findings when the
// gate failed the job.
func (m *Manager) countHazver(fs []flow.HazverFinding, err error) {
	var he *flow.HazverError
	if len(fs) == 0 && !errors.As(err, &he) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range fs {
		m.hazverDiags[f.Diag.Code]++
	}
	if he != nil {
		for _, d := range he.Diags {
			m.hazverDiags[d.Code]++
		}
	}
}

// Metrics snapshots the daemon-wide counters.
func (m *Manager) Metrics() *api.MetricsJSON {
	out := &api.MetricsJSON{
		JobsByState: map[string]int64{
			api.StateQueued: 0, api.StateRunning: 0, api.StateDone: 0,
			api.StateFailed: 0, api.StateCanceled: 0,
		},
		QueueDepth:      m.QueueDepth(),
		DedupHits:       m.dedupHits.Load(),
		DedupMisses:     m.dedupMisses.Load(),
		FlowCacheHits:   m.flowHits.Load(),
		FlowCacheMisses: m.flowMisses.Load(),
		MinimizeExact:   m.minExact.Load(),
		MinimizeGreedy:  m.minGreedy.Load(),
		EnumNodes:       m.enumNodes.Load(),
		BranchNodes:     m.branchNodes.Load(),
		Stages:          map[string]api.StageJSON{},

		StoreDiskHits:       m.storeDiskHits.Load(),
		StoreMemHits:        m.storeMemHits.Load(),
		StoreMisses:         m.storeMisses.Load(),
		JobsResumed:         m.jobsResumed.Load(),
		CheckpointsSaved:    m.ckptSaves.Load(),
		CheckpointsRestored: m.ckptLoads.Load(),

		ControllersReused:        m.ctlReused.Load(),
		ControllersResynthesized: m.ctlResynth.Load(),
	}
	if m.store != nil {
		if st, err := m.store.Stats(); err == nil {
			out.Store = api.FromStoreStats(st)
		}
	}
	for _, j := range m.List() {
		j.mu.Lock()
		out.JobsByState[j.state]++
		j.mu.Unlock()
	}
	for name, s := range m.aggTimings.Snapshot() {
		out.Stages[name] = api.StageJSON{Count: s.Count, TotalMicros: s.Total.Microseconds()}
	}
	m.mu.Lock()
	if len(m.netlintDiags) > 0 {
		out.NetlintDiags = make(map[string]int64, len(m.netlintDiags))
		for code, n := range m.netlintDiags {
			out.NetlintDiags[code] = n
		}
	}
	if len(m.bmlintDiags) > 0 {
		out.BmlintDiags = make(map[string]int64, len(m.bmlintDiags))
		for code, n := range m.bmlintDiags {
			out.BmlintDiags[code] = n
		}
	}
	if len(m.hazverDiags) > 0 {
		out.HazverDiags = make(map[string]int64, len(m.hazverDiags))
		for code, n := range m.hazverDiags {
			out.HazverDiags[code] = n
		}
	}
	m.mu.Unlock()
	return out
}

// ---------------------------------------------------------------------
// Request preparation: validation, canonical dedup keys, executors.

// netlistKey digests a control netlist for deduplication. Each
// component contributes its name plus its ch.Canonicalize form — the
// α-renamed body key and the actual wire names in canonical channel
// order. Actual wires (not α-classes) are part of the key because the
// netlist's interconnect and the emitted gate netlists depend on them;
// two requests share a key exactly when the flow would produce
// byte-identical outputs for them, however their sources were
// formatted. Components the canonicalizer rejects (verb channels)
// contribute their formatted text instead.
func netlistKey(n *core.Netlist) string {
	h := sha256.New()
	for _, c := range n.Components {
		if cf, ok := ch.CanonicalizeProgram(c); ok {
			fmt.Fprintf(h, "%s|%s|%s\n", c.Name, cf.Key, strings.Join(cf.Wires, ","))
		} else {
			fmt.Fprintf(h, "%s|raw|%s\n", c.Name, ch.FormatProgram(c))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// prepare validates a request and returns its executor closure and
// dedup key. All parsing happens here, at submission time, so a
// malformed request fails synchronously with a 400-class error. The
// executor receives the job's checkpoint sink (nil without a store)
// and the manager's controller cache (incremental resynthesis tier)
// and threads both into the flow, so long runs persist each completed
// stage and unchanged controllers splice in instead of recomputing.
func prepare(req api.JobRequest) (func(context.Context, *flow.Metrics, flow.CheckpointSink, flow.ControllerCache) (*api.JobResult, error), string, error) {
	cfgKey := req.Config.Key()
	switch req.Kind {
	case api.KindDesign:
		d, err := designs.ByName(req.Design)
		if err != nil {
			return nil, "", err
		}
		key := fmt.Sprintf("design|%s|%s|%s", req.Design, cfgKey, netlistKey(d.Control()))
		exec := func(ctx context.Context, met *flow.Metrics, ck flow.CheckpointSink, ctl flow.ControllerCache) (*api.JobResult, error) {
			opt := req.Config.Options(met)
			opt.Checkpoint = ck
			opt.Controllers = ctl
			r, err := flow.RunDesignCtx(ctx, d, opt)
			if err != nil {
				return nil, err
			}
			return &api.JobResult{Kind: api.KindDesign, Design: api.FromDesignResult(r)}, nil
		}
		return exec, key, nil

	case api.KindTable3:
		key := fmt.Sprintf("table3|%s", cfgKey)
		exec := func(ctx context.Context, met *flow.Metrics, ck flow.CheckpointSink, ctl flow.ControllerCache) (*api.JobResult, error) {
			opt := req.Config.Options(met)
			opt.Checkpoint = ck
			opt.Controllers = ctl
			rs, err := flow.RunAllCtx(ctx, opt)
			if err != nil {
				return nil, err
			}
			return &api.JobResult{Kind: api.KindTable3, Table3: api.FromDesignResults(rs)}, nil
		}
		return exec, key, nil

	case api.KindSynth:
		n, err := parseSource(req)
		if err != nil {
			return nil, "", err
		}
		mode := req.Mode
		if mode == "" {
			mode = api.ModeOpt
		}
		if mode != api.ModeOpt && mode != api.ModeUnopt {
			return nil, "", fmt.Errorf("server: unknown mode %q", req.Mode)
		}
		key := fmt.Sprintf("synth|%s|%s|%s", mode, cfgKey, netlistKey(n))
		exec := func(ctx context.Context, met *flow.Metrics, ck flow.CheckpointSink, ctl flow.ControllerCache) (*api.JobResult, error) {
			return runSynth(ctx, n, mode, req.Config, met, ck, ctl)
		}
		return exec, key, nil
	}
	return nil, "", fmt.Errorf("server: unknown job kind %q", req.Kind)
}

// parseSource turns a KindSynth request body into a control netlist.
func parseSource(req api.JobRequest) (*core.Netlist, error) {
	if strings.TrimSpace(req.Source) == "" {
		return nil, fmt.Errorf("server: synth request has empty source")
	}
	switch req.Format {
	case "", api.FormatCH:
		return core.ParseNetlist(req.Source)
	case api.FormatBalsa:
		name := req.Name
		if name == "" {
			name = "design"
		}
		hcn, err := balsa.CompileSource(req.Source, name)
		if err != nil {
			return nil, err
		}
		return hcn.Control()
	}
	return nil, fmt.Errorf("server: unknown source format %q", req.Format)
}

// synthClusterCheckpoint is the payload of a KindSynth job's completed
// clustering stage: the clustered netlist round-trips as CH text, the
// report in its wire form.
type synthClusterCheckpoint struct {
	Netlist string          `json:"netlist"`
	Report  *api.ReportJSON `json:"report"`
}

// runSynth is the executor for submitted designs: optional clustering,
// then synthesis and mapping of every controller, returning summary
// numbers and structural Verilog per controller. The clustering stage
// checkpoints to ck (when durable), so a daemon interrupted mid-job
// resumes with the clustered netlist instead of re-deriving it.
func runSynth(ctx context.Context, n *core.Netlist, mode string, cfg api.FlowConfig, met *flow.Metrics, ck flow.CheckpointSink, ctl flow.ControllerCache) (*api.JobResult, error) {
	// Pre-synthesis lint gate, mirroring the flow's runDesign: error
	// findings fail the job before clustering or synthesis start;
	// warnings stream to subscribers via the metrics lint hook.
	if err := flow.LintNetlist(n, "submitted", met); err != nil {
		return nil, err
	}
	out := &api.SynthResultJSON{Mode: mode}
	tmMode := techmap.AreaShared
	if mode == api.ModeOpt {
		tmMode = techmap.SpeedSplit
		if clustered, rep, ok := loadSynthCluster(ck); ok {
			n, out.Report = clustered, rep
			met.CheckpointLoads.Add(1)
		} else {
			var rep *core.Report
			var err error
			start := time.Now()
			n, rep, err = core.OptimizeOpt(n, core.Options{
				MaxStates: cfg.MaxStates, Workers: cfg.Workers, Ctx: ctx,
			})
			met.Timings.Observe("cluster", time.Since(start))
			if err != nil {
				return nil, err
			}
			out.Report = api.FromReport(rep)
			saveSynthCluster(ck, n, out.Report)
			if ck != nil {
				met.CheckpointSaves.Add(1)
			}
		}
	}
	// Post-compile bmlint gate, mirroring the flow's runDesign: an
	// ill-formed Burst-Mode spec fails the job before the minimizer
	// sees it; warnings and the BM200 reports stream to subscribers
	// and count toward the daemon's per-code totals.
	if _, err := flow.BmlintGate("synth", mode, n, met); err != nil {
		return nil, err
	}
	opts := cfg.Options(met)
	opts.Controllers = ctl
	mapped, ctrls, err := flow.SynthesizeNetlistCtx(ctx, n, tmMode, opts)
	if err != nil {
		return nil, err
	}
	lib := opts.Lib
	if lib == nil {
		lib = cell.AMS035()
	}
	// Post-merge netlint gate, mirroring the flow's runDesign: error
	// findings fail the job before any Verilog ships; warnings stream
	// to subscribers and count toward the daemon's per-code totals; the
	// merged-circuit report (static area/depth included) rides on the
	// result.
	nlres, err := flow.NetlintGate("synth", mode, mapped, lib, met)
	if err != nil {
		return nil, err
	}
	rep := api.NetlintReport(nlres)
	out.Netlint = &rep
	// Post-mapping hazver gate, mirroring the flow's runDesign: a
	// statically detectable hazard on a specified burst fails the job;
	// warnings stream to subscribers and count toward the daemon's
	// per-code totals; the verification report rides on the result.
	hzres, err := flow.HazverGate(ctx, "synth", mode, n, tmMode, opts)
	if err != nil {
		return nil, err
	}
	hz := api.HazverReport(hzres)
	out.Hazver = &hz
	for i, nl := range mapped {
		out.Controllers = append(out.Controllers, api.SynthControllerJSON{
			Controller: api.FromControllerResult(ctrls[i]),
			Verilog:    techmap.VerilogModules(nl, lib),
		})
	}
	return &api.JobResult{Kind: api.KindSynth, Synth: out}, nil
}

// RunSynth executes a KindSynth request in process, without a job
// queue: the balsabm CLI's synth subcommand calls it directly, so a
// local run and a daemon job go through the same executor and emit
// byte-identical results. ctl is the controller-grain incremental
// cache (nil to synthesize everything afresh); there is no checkpoint
// sink — interrupted CLI runs just rerun.
func RunSynth(ctx context.Context, req api.JobRequest, met *flow.Metrics, ctl flow.ControllerCache) (*api.JobResult, error) {
	n, err := parseSource(req)
	if err != nil {
		return nil, err
	}
	mode := req.Mode
	if mode == "" {
		mode = api.ModeOpt
	}
	if mode != api.ModeOpt && mode != api.ModeUnopt {
		return nil, fmt.Errorf("server: unknown mode %q", req.Mode)
	}
	return runSynth(ctx, n, mode, req.Config, met, nil, ctl)
}

// RunNetlint synthesizes a submitted
// design without simulation and audit every mapped controller plus the
// merged circuit. Unlike the job-queue gate, error findings do not
// fail the request — the report is the product.
func RunNetlint(ctx context.Context, req api.NetlintRequest) (*api.NetlintResultJSON, error) {
	n, err := parseSource(api.JobRequest{Source: req.Source, Format: req.Format, Name: req.Name})
	if err != nil {
		return nil, err
	}
	mode := req.Mode
	if mode == "" {
		mode = api.ModeOpt
	}
	if mode != api.ModeOpt && mode != api.ModeUnopt {
		return nil, fmt.Errorf("server: unknown mode %q", req.Mode)
	}
	name := req.Name
	if name == "" {
		name = "design"
	}
	tmMode := techmap.AreaShared
	if mode == api.ModeOpt {
		tmMode = techmap.SpeedSplit
		n, _, err = core.OptimizeOpt(n, core.Options{
			MaxStates: req.Config.MaxStates, Workers: req.Config.Workers, Ctx: ctx,
		})
		if err != nil {
			return nil, err
		}
	}
	ctrls, merged, err := flow.NetlintNetlist(ctx, name, mode, n, tmMode, req.Config.Options(nil))
	if err != nil {
		return nil, err
	}
	return api.NetlintResult(mode, ctrls, merged), nil
}

// RunHazver synthesizes a submitted design without simulation, maps
// each distinct controller shape in the requested arm's mode, and
// statically verifies the mapped logic hazard-free on every specified
// burst by two-pass ternary evaluation. Unlike the job-queue gate,
// error findings do not fail the request — the report is the product.
// Both the POST /api/v1/hazver handler and the local `balsabm hazver`
// path call this one function, so the two answer byte-identical
// reports.
func RunHazver(ctx context.Context, req api.HazverRequest) (*api.HazverResultJSON, error) {
	n, err := parseSource(api.JobRequest{Source: req.Source, Format: req.Format, Name: req.Name})
	if err != nil {
		return nil, err
	}
	mode := req.Mode
	if mode == "" {
		mode = api.ModeOpt
	}
	if mode != api.ModeOpt && mode != api.ModeUnopt {
		return nil, fmt.Errorf("server: unknown mode %q", req.Mode)
	}
	name := req.Name
	if name == "" {
		name = "design"
	}
	tmMode := techmap.AreaShared
	if mode == api.ModeOpt {
		tmMode = techmap.SpeedSplit
		n, _, err = core.OptimizeOpt(n, core.Options{
			MaxStates: req.Config.MaxStates, Workers: req.Config.Workers, Ctx: ctx,
		})
		if err != nil {
			return nil, err
		}
	}
	res, err := flow.HazverNetlist(ctx, name, mode, n, tmMode, req.Config.Options(nil))
	if err != nil {
		return nil, err
	}
	return api.HazverResult(mode, res), nil
}

// RunBmlint compiles a submitted design's components to Burst-Mode
// specifications and audits each with bmlint — or, for Format "bms",
// lints a single spec directly. Unlike the job-queue gate, error
// findings do not fail the request: the report is the product. Both
// the POST /api/v1/bmlint handler and the local `balsabm bmlint` path
// call this one function, so the two answer byte-identical reports.
func RunBmlint(ctx context.Context, req api.BmlintRequest) (*api.BmlintResultJSON, error) {
	if req.Format == api.FormatBMS {
		if strings.TrimSpace(req.Source) == "" {
			return nil, fmt.Errorf("server: bmlint request has empty source")
		}
		res := bmlint.LintSource(req.Source)
		if res.Name == "" {
			res.Name = req.Name
		}
		return api.BmlintResult([]bmlint.Result{res}), nil
	}
	n, err := parseSource(api.JobRequest{Source: req.Source, Format: req.Format, Name: req.Name})
	if err != nil {
		return nil, err
	}
	specs, err := flow.BmlintNetlist(n)
	if err != nil {
		return nil, err
	}
	return api.BmlintResult(specs), nil
}

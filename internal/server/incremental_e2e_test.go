package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"balsabm/internal/api"
	"balsabm/internal/flow"
)

// incrBase / incrEdit are a submit-edit-resubmit pair: the edit
// changes only ctlB's protocol, so an incremental resubmission reuses
// ctlA's cached synthesis and recomputes ctlB's.
const incrBase = `
(program ctlA (rep (enc-early (p-to-p passive root)
    (seq (p-to-p active l1) (p-to-p active l2)))))
(program ctlB (rep (enc-late (p-to-p passive go)
    (seq-ov (p-to-p active x1) (p-to-p active x2)))))
`

const incrEdit = `
(program ctlA (rep (enc-early (p-to-p passive root)
    (seq (p-to-p active l1) (p-to-p active l2)))))
(program ctlB (rep (enc-middle (p-to-p passive go)
    (seq-ov (p-to-p active x1) (p-to-p active x2)))))
`

// TestE2EIncrementalResubmit is the daemon-level acceptance pin:
// submit, edit one controller, resubmit with baseJobID — the second
// job splices the unchanged controller from the controller cache
// (reuse counters in JobStatus, the terminal SSE event, and /metrics)
// and its result is byte-identical to a from-scratch synthesis.
func TestE2EIncrementalResubmit(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	base, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: incrBase, Mode: api.ModeOpt})
	if err != nil {
		t.Fatal(err)
	}
	baseSt, err := c.Wait(ctx, base.ID)
	if err != nil {
		t.Fatal(err)
	}
	if baseSt.State != api.StateDone {
		t.Fatalf("base job state %s", baseSt.State)
	}
	if baseSt.ControllersResynthesized != 2 || baseSt.ControllersReused != 0 {
		t.Fatalf("base job counters reused=%d resynthesized=%d, want 0/2",
			baseSt.ControllersReused, baseSt.ControllersResynthesized)
	}

	// Unknown base job IDs fail submission with a 400-class error.
	if _, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: incrEdit,
		Mode: api.ModeOpt, BaseJobID: "j99999"}); err == nil ||
		!strings.Contains(err.Error(), "unknown base job") {
		t.Fatalf("unknown baseJobID accepted: %v", err)
	}

	edit, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: incrEdit,
		Mode: api.ModeOpt, BaseJobID: base.ID})
	if err != nil {
		t.Fatal(err)
	}
	editSt, err := c.Wait(ctx, edit.ID)
	if err != nil {
		t.Fatal(err)
	}
	if editSt.State != api.StateDone || editSt.BaseJobID != base.ID {
		t.Fatalf("edit job state=%s base=%q, want done/%s", editSt.State, editSt.BaseJobID, base.ID)
	}
	if editSt.ControllersReused != 1 || editSt.ControllersResynthesized != 1 {
		t.Fatalf("edit job counters reused=%d resynthesized=%d, want 1/1",
			editSt.ControllersReused, editSt.ControllersResynthesized)
	}

	// Byte-identity with a from-scratch run of the same executor.
	res, err := c.Result(ctx, edit.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := api.Encode(res.Synth)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RunSynth(ctx, api.JobRequest{Kind: api.KindSynth, Source: incrEdit,
		Mode: api.ModeOpt, Config: api.FlowConfig{Workers: 2}}, &flow.Metrics{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := api.Encode(scratch.Synth)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("incremental result differs from scratch:\n--- incremental ---\n%s\n--- scratch ---\n%s", got, want)
	}

	// The reuse split rides the terminal SSE event.
	reqCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet,
		hs.URL+"/api/v1/jobs/"+edit.ID+"/events", nil)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	sawTerminal := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.Type == "state" && ev.State == api.StateDone {
			sawTerminal = true
			if ev.ControllersReused != 1 || ev.ControllersResynthesized != 1 {
				t.Fatalf("terminal event counters reused=%d resynthesized=%d, want 1/1",
					ev.ControllersReused, ev.ControllersResynthesized)
			}
		}
	}
	if !sawTerminal {
		t.Fatal("no terminal state event on the stream")
	}

	// Daemon-level aggregates: JSON metrics and the Prometheus text form.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.ControllersReused != 1 || m.ControllersResynthesized != 3 {
		t.Fatalf("daemon counters reused=%d resynthesized=%d, want 1/3",
			m.ControllersReused, m.ControllersResynthesized)
	}
	mresp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mbuf strings.Builder
	if _, err := io.Copy(&mbuf, mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`balsabmd_incremental_controllers_total{outcome="reused"} 1`,
		`balsabmd_incremental_controllers_total{outcome="resynthesized"} 3`,
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbuf.String())
		}
	}
}

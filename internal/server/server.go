// Package server implements balsabmd, the synthesis-as-a-service
// daemon: an HTTP/JSON API that accepts Balsa/CH designs, runs them
// through the internal/flow pipeline on a persistent job queue with
// bounded concurrency and context-based cancellation, deduplicates
// requests on canonical design forms (ch.Canonicalize), streams live
// per-stage progress over SSE, and exposes cache/queue/latency
// counters on /metrics.
//
// API (all request/response bodies are the JSON types of internal/api):
//
//	POST   /api/v1/jobs             submit a JobRequest; 202 + JobStatus
//	GET    /api/v1/jobs             list job statuses
//	GET    /api/v1/jobs/{id}        one job's status; ?wait=30s long-polls
//	                                until the job is terminal
//	DELETE /api/v1/jobs/{id}        cancel the job
//	GET    /api/v1/jobs/{id}/result the JobResult (202 while running)
//	GET    /api/v1/jobs/{id}/events live progress stream (SSE)
//	POST   /api/v1/lint             run the chlint analyzer on CH source,
//	                                synchronously; body is a LintRequest
//	POST   /api/v1/bmlint           compile a design's Burst-Mode specs (or
//	                                lint one .bms spec) and answer the
//	                                bmlint audit per spec
//	POST   /api/v1/netlint          synthesize a design (no simulation) and
//	                                run the netlint structural audit on every
//	                                mapped controller plus the merged
//	                                circuit; body is a NetlintRequest
//	POST   /api/v1/hazver           synthesize a design (no simulation) and
//	                                statically verify every controller's
//	                                mapped logic hazard-free on its specified
//	                                bursts; body is a HazverRequest
//	GET    /api/v1/designs          built-in benchmark design names
//	GET    /api/v1/metrics          daemon counters as JSON
//	GET    /metrics                 same counters, Prometheus text format
//	GET    /healthz                 liveness probe
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"balsabm/internal/analysis"
	"balsabm/internal/api"
	"balsabm/internal/designs"
)

// Server is the HTTP front of a job Manager.
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// New builds a server (and its manager) from cfg.
func New(cfg Config) *Server {
	s := &Server{mgr: NewManager(cfg), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /api/v1/lint", s.handleLint)
	s.mux.HandleFunc("POST /api/v1/bmlint", s.handleBmlint)
	s.mux.HandleFunc("POST /api/v1/netlint", s.handleNetlint)
	s.mux.HandleFunc("POST /api/v1/hazver", s.handleHazver)
	s.mux.HandleFunc("GET /api/v1/designs", s.handleDesigns)
	s.mux.HandleFunc("GET /api/v1/metrics", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsText)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the underlying job manager (used by the daemon for
// shutdown and by tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Close stops the manager; outstanding jobs are cancelled.
func (s *Server) Close() { s.mgr.Close() }

// writeJSON encodes v through the canonical api encoder.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := api.Encode(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, err := s.mgr.Submit(req)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.mgr.List()
	out := make([]api.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves the {id} path value, answering 404 itself on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait duration: %w", err))
			return
		}
		if d > 5*time.Minute {
			d = 5 * time.Minute
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-j.Done():
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.mgr.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case api.StateDone:
		writeJSON(w, http.StatusOK, j.Result())
	case api.StateFailed, api.StateCanceled:
		writeJSON(w, http.StatusConflict, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleEvents streams a job's progress as Server-Sent Events: the
// retained history replays first, then live events until the job
// finishes or the client disconnects. Every event is one SSE message
// with the event type in the "event" field and an api.Event JSON body.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	write := func(ev api.Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	replay, live, cancel := j.events.subscribe()
	defer cancel()
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // job finished; stream complete
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleLint runs the chlint analyzer synchronously — no job queue;
// lint is cheap. The response body is api.Encode(api.LintResult(...)),
// the same struct and encoder `balsabm lint -json` prints, so the two
// surfaces answer byte-identical diagnostics for the same source.
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req api.LintRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, api.LintResult(req.File, analysis.LintSource(req.Source)))
}

// handleBmlint compiles a submitted design's Burst-Mode specs (or
// lints one .bms spec) synchronously — no job queue; compiling specs
// is cheap. The body is api.Encode(api.BmlintResult(...)), the same
// struct and encoder `balsabm bmlint -json` prints, so the two
// surfaces answer byte-identical reports for the same source.
// Error-severity findings are reported, not failed: this endpoint
// exists to look at them.
func (s *Server) handleBmlint(w http.ResponseWriter, r *http.Request) {
	var req api.BmlintRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	res, err := RunBmlint(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleNetlint synthesizes a submitted design synchronously (no
// simulation, no job queue) and answers its netlint audit. The body is
// api.Encode(api.NetlintResult(...)), the same struct and encoder
// `balsabm netlint -json` prints, so the two surfaces answer
// byte-identical reports for the same source. Error-severity findings
// are reported, not failed: this endpoint exists to look at them.
func (s *Server) handleNetlint(w http.ResponseWriter, r *http.Request) {
	var req api.NetlintRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	res, err := RunNetlint(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleHazver synthesizes a submitted design synchronously (no
// simulation, no job queue) and answers its static hazard
// verification. The body is api.Encode(api.HazverResult(...)), the
// same struct and encoder `balsabm hazver -json` prints, so the two
// surfaces answer byte-identical reports for the same source.
// Error-severity findings are reported, not failed: this endpoint
// exists to look at them.
func (s *Server) handleHazver(w http.ResponseWriter, r *http.Request) {
	var req api.HazverRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	res, err := RunHazver(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, d := range designs.All() {
		names = append(names, d.Name)
	}
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Metrics())
}

func (s *Server) handleMetricsText(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(PrometheusText(s.mgr.Metrics())))
}

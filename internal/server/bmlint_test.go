package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"balsabm/internal/api"
)

// A well-formed two-state handshake spec in .bms text form.
const bmlintTestSpec = `name pulse
input go 0
output done 0
0 1 go+ | done+
1 0 go- | done-
`

// TestBmlintEndpoint: POST /api/v1/bmlint compiles the design's
// components to Burst-Mode specs and answers one audit per spec, each
// with the BM200 static report filled in and zero BM-errors on
// chtobm-compiled output.
func TestBmlintEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	res, err := c.Bmlint(ctx, api.BmlintRequest{Source: netlintTestSource, Name: "pair"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs) != 2 {
		t.Fatalf("spec reports = %d, want 2", len(res.Specs))
	}
	for _, rep := range res.Specs {
		if rep.Errors != 0 {
			t.Errorf("%s: compiled spec has %d BM-errors: %+v", rep.Spec, rep.Errors, rep.Diags)
		}
		if rep.Stats.States == 0 || rep.Stats.Budget == 0 {
			t.Errorf("%s: static report missing or empty: %+v", rep.Spec, rep.Stats)
		}
		if rep.Infos == 0 {
			t.Errorf("%s: no BM200 info diagnostic: %+v", rep.Spec, rep.Diags)
		}
	}
}

// TestBmlintEndpointBMS: Format "bms" lints the spec text directly,
// one report, no synthesis.
func TestBmlintEndpointBMS(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	res, err := c.Bmlint(ctx, api.BmlintRequest{Source: bmlintTestSpec, Format: api.FormatBMS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs) != 1 || res.Specs[0].Spec != "pulse" {
		t.Fatalf("specs = %+v, want one report for pulse", res.Specs)
	}
	if res.Specs[0].Errors != 0 {
		t.Errorf("clean spec has BM-errors: %+v", res.Specs[0].Diags)
	}

	// An unparsable spec folds into a single BM000 error diagnostic —
	// the report is the product, so the request itself succeeds.
	res, err = c.Bmlint(ctx, api.BmlintRequest{Source: "not a spec", Format: api.FormatBMS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs) != 1 || len(res.Specs[0].Diags) != 1 || res.Specs[0].Diags[0].Code != "BM000" {
		t.Fatalf("unparsable spec: %+v, want one BM000", res.Specs)
	}
}

// TestBmlintEndpointByteIdentity: the raw response body must be
// byte-identical to api.Encode(RunBmlint(...)) — the same bytes
// `balsabm bmlint -json` prints locally.
func TestBmlintEndpointByteIdentity(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Workers: 1})
	req := api.BmlintRequest{Source: netlintTestSource, Name: "pair"}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/api/v1/bmlint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, remote)
	}
	res, err := RunBmlint(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	local, err := api.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, local) {
		t.Errorf("server and local bytes differ:\n--- server ---\n%s--- local ---\n%s", remote, local)
	}
}

// TestBmlintEndpointRejects: unknown body fields, unparsable designs
// and empty .bms sources answer 400 with an error body.
func TestBmlintEndpointRejects(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	resp, err := hs.Client().Post(hs.URL+"/api/v1/bmlint", "application/json",
		bytes.NewReader([]byte(`{"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}

	if _, err := c.Bmlint(ctx, api.BmlintRequest{Source: "(not a design"}); err == nil {
		t.Error("unparsable design accepted")
	}
	if _, err := c.Bmlint(ctx, api.BmlintRequest{Source: "  ", Format: api.FormatBMS}); err == nil {
		t.Error("empty bms source accepted")
	}
}

// TestBmlintMetricsCounters: a completed job feeds the per-code bmlint
// counters (the gate's BM200 reports at minimum), visible in both the
// JSON metrics and the Prometheus text export.
func TestBmlintMetricsCounters(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	if _, err := c.Run(ctx, api.JobRequest{Kind: api.KindSynth, Source: netlintTestSource, Mode: api.ModeUnopt}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The post-compile gate always records one BM200 report per spec.
	if m.BmlintDiags["BM200"] == 0 {
		t.Fatalf("bmlint diag counters missing BM200: %+v", m.BmlintDiags)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), `balsabmd_bmlint_diags_total{code="BM200"}`) {
		t.Errorf("/metrics lacks the bmlint counter:\n%s", text)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"balsabm/internal/api"
)

// A two-component design small enough to synthesize in a test but with
// real structure (sequencing plus an internal channel).
const netlintTestSource = `
(program a (rep (enc-early (p-to-p passive go) (seq (p-to-p active mid) (p-to-p active out)))))
(program b (rep (enc-early (p-to-p passive mid) (p-to-p active done))))
`

// TestNetlintEndpoint: POST /api/v1/netlint synthesizes the design and
// answers per-controller reports plus the merged circuit, with the
// static area/depth block filled in and zero NL-errors on flow output.
func TestNetlintEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	for _, mode := range []string{api.ModeUnopt, api.ModeOpt} {
		res, err := c.Netlint(ctx, api.NetlintRequest{Source: netlintTestSource, Name: "pair", Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Mode != mode {
			t.Errorf("mode %q, want %q", res.Mode, mode)
		}
		if len(res.Controllers) == 0 {
			t.Fatalf("%s: no controller reports", mode)
		}
		for _, rep := range res.Controllers {
			if !strings.HasPrefix(rep.Circuit, "pair."+mode+".") {
				t.Errorf("controller circuit %q lacks the pair.%s. prefix", rep.Circuit, mode)
			}
			if rep.Errors != 0 {
				t.Errorf("%s: flow-emitted controller has %d NL-errors: %+v", rep.Circuit, rep.Errors, rep.Diags)
			}
		}
		m := res.Merged
		if m.Circuit != "pair."+mode {
			t.Errorf("merged circuit %q, want pair.%s", m.Circuit, mode)
		}
		if m.Errors != 0 {
			t.Errorf("merged circuit has %d NL-errors: %+v", m.Errors, m.Diags)
		}
		if m.Static.Cells == 0 || m.Static.Area <= 0 {
			t.Errorf("merged static report missing or empty: %+v", m.Static)
		}
	}
}

// TestNetlintEndpointByteIdentity: the raw response body must be
// byte-identical to api.Encode(RunNetlint(...)) — the same bytes
// `balsabm netlint -json` prints locally.
func TestNetlintEndpointByteIdentity(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Workers: 1})
	req := api.NetlintRequest{Source: netlintTestSource, Name: "pair", Mode: api.ModeUnopt}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/api/v1/netlint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, remote)
	}
	res, err := RunNetlint(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	local, err := api.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, local) {
		t.Errorf("server and local bytes differ:\n--- server ---\n%s--- local ---\n%s", remote, local)
	}
}

// TestNetlintEndpointRejects: unknown body fields, unparsable sources
// and unknown modes answer 400 with an error body.
func TestNetlintEndpointRejects(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	resp, err := hs.Client().Post(hs.URL+"/api/v1/netlint", "application/json",
		bytes.NewReader([]byte(`{"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}

	if _, err := c.Netlint(ctx, api.NetlintRequest{Source: "(not a design"}); err == nil {
		t.Error("unparsable source accepted")
	}
	if _, err := c.Netlint(ctx, api.NetlintRequest{Source: netlintTestSource, Mode: "fastest"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestNetlintMetricsCounters: a completed synth job feeds the per-code
// netlint counters, visible in both the JSON metrics and the
// Prometheus text export.
func TestNetlintMetricsCounters(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	if _, err := c.Run(ctx, api.JobRequest{Kind: api.KindSynth, Source: netlintTestSource, Mode: api.ModeUnopt}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The merged-circuit gate always records its NL200 static report.
	if m.NetlintDiags["NL200"] == 0 {
		t.Fatalf("netlint diag counters missing NL200: %+v", m.NetlintDiags)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), `balsabmd_netlint_diags_total{code="NL200"}`) {
		t.Errorf("/metrics lacks the netlint counter:\n%s", text)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"balsabm/internal/analysis"
	"balsabm/internal/api"
)

// TestLintEndpointByteIdentity: for every examples/lint corpus file,
// the raw POST /api/v1/lint response body must be byte-identical to
// what `balsabm lint -json <file>` prints — both are
// api.Encode(api.LintResult(file, LintSource(src))).
func TestLintEndpointByteIdentity(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Workers: 1})
	files, err := filepath.Glob("../../examples/lint/*.ch")
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(api.LintRequest{Source: string(src), File: file})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := hs.Client().Post(hs.URL+"/api/v1/lint", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		remote, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", filepath.Base(file), resp.StatusCode, remote)
		}
		local, err := api.Encode(api.LintResult(file, analysis.LintSource(string(src))))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(remote, local) {
			t.Errorf("%s: server and CLI bytes differ:\n--- server ---\n%s--- cli ---\n%s",
				filepath.Base(file), remote, local)
		}
	}
}

// TestLintEndpointCounts: the acceptance-criterion program (three
// Table 1 violations) answers three errors with positions over the
// wire.
func TestLintEndpointCounts(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	src, err := os.ReadFile("../../examples/lint/table1.ch")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Lint(context.Background(), api.LintRequest{Source: string(src), File: "table1.ch"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 3 || len(res.Diags) != 3 {
		t.Fatalf("want 3 errors, got %d (%d diags)", res.Errors, len(res.Diags))
	}
	wantLines := []int{5, 6, 7}
	for i, d := range res.Diags {
		if d.Code != "CH001" || d.Line != wantLines[i] || d.Col != 3 {
			t.Errorf("diag %d: %s at %d:%d, want CH001 at %d:3", i, d.Code, d.Line, d.Col, wantLines[i])
		}
	}
	// Malformed body: 400.
	resp, err := hs.Client().Post(hs.URL+"/api/v1/lint", "application/json", bytes.NewReader([]byte(`{"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestSynthJobLintGate: a synth job whose netlist fails lint must fail
// before synthesis, with the analyzer's findings in the job error, and
// a job with warnings must surface them as "lint" SSE events.
func TestSynthJobLintGate(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	// "up" is driven from both ends: CH010, error severity.
	broken := `
(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active up))))
(program b (rep (enc-early (p-to-p passive go_b) (p-to-p active up))))
`
	_, err := c.Run(ctx, api.JobRequest{Kind: api.KindSynth, Source: broken, Mode: api.ModeUnopt})
	if err == nil {
		t.Fatal("want lint failure, got success")
	}
	if !contains(err.Error(), "CH010") {
		t.Fatalf("error does not carry the lint code: %v", err)
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

// TestLintWarningsStreamAsEvents: non-error findings from the gate
// appear as "lint" SSE events on the job's progress stream, and the
// job still completes.
func TestLintWarningsStreamAsEvents(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	// Two components sharing no channel: CH013 warnings, no errors.
	disconnected := `
(program a (rep (enc-early (p-to-p passive go_a) (p-to-p active out_a))))
(program b (rep (enc-early (p-to-p passive go_b) (p-to-p active out_b))))
`
	st, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: disconnected, Mode: api.ModeUnopt})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("job state %s (%s), want done", final.State, final.Error)
	}

	reqCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet,
		hs.URL+"/api/v1/jobs/"+st.ID+"/events", nil)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lints []api.DiagJSON
	var netlints []api.NetlintDiagJSON
	var bmlints []api.BmlintDiagJSON
	var hazvers []api.HazverDiagJSON
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.Type == "lint" {
			switch {
			case ev.Lint != nil:
				lints = append(lints, *ev.Lint)
			case ev.Netlint != nil:
				netlints = append(netlints, *ev.Netlint)
			case ev.Bmlint != nil:
				bmlints = append(bmlints, *ev.Bmlint)
			case ev.Hazver != nil:
				hazvers = append(hazvers, *ev.Hazver)
			default:
				t.Fatalf("lint event without payload: %+v", ev)
			}
		}
	}
	if len(lints) != 2 {
		t.Fatalf("want 2 lint events (CH013 per component), got %d: %+v", len(lints), lints)
	}
	for _, d := range lints {
		if d.Code != "CH013" || d.Severity != "warning" {
			t.Errorf("unexpected lint event %+v", d)
		}
	}
	// The post-merge netlint gate streams its findings on the same
	// event type; at minimum the NL200 static report of the merged
	// circuit must have arrived, tagged with the audited circuit.
	found := false
	for _, d := range netlints {
		if d.Code == "NL200" && d.Circuit == "synth.unopt" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing NL200 netlint event for synth.unopt: %+v", netlints)
	}
	// The post-compile bmlint gate streams its findings there too: one
	// BM200 static report per compiled spec, tagged with the audited
	// spec ("design.arm.component").
	for _, spec := range []string{"synth.unopt.a", "synth.unopt.b"} {
		found := false
		for _, d := range bmlints {
			if d.Code == "BM200" && d.Spec == spec {
				found = true
			}
		}
		if !found {
			t.Errorf("missing BM200 bmlint event for %s: %+v", spec, bmlints)
		}
	}
	// The post-mapping hazver gate streams its findings there too: the
	// HZ200 static report of the verified circuit.
	found = false
	for _, d := range hazvers {
		if d.Code == "HZ200" && d.Circuit == "synth.unopt" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing HZ200 hazver event for synth.unopt: %+v", hazvers)
	}
}

package server

import (
	"os"
	"testing"

	"balsabm/internal/api"
	"balsabm/internal/store"
)

// benchReq is the workload for the persistence benchmarks: a small
// synth job that exercises the full submit→execute→persist path
// without dominating the suite's runtime.
func benchReq() api.JobRequest {
	return api.JobRequest{Kind: api.KindSynth, Source: twoSequencers, Mode: api.ModeUnopt}
}

// benchRun boots a manager over dir, submits the workload and waits
// for the result, returning whether it was served from disk.
func benchRun(b *testing.B, dir string) bool {
	st, err := store.Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	m := NewManager(Config{Workers: 2, Store: st})
	j, err := m.Submit(benchReq())
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()
	if got := j.Status(); got.State != api.StateDone {
		b.Fatalf("job state = %s, want done", got.State)
	}
	disk := j.Status().Disk
	m.Close()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return disk
}

// BenchmarkPersistColdStart measures first-result latency of a daemon
// booting on an empty data dir: journal replay (trivial), then a full
// flow execution, then result persistence.
func BenchmarkPersistColdStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp(b.TempDir(), "cold")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if benchRun(b, dir) {
			b.Fatal("cold run reported a disk hit")
		}
	}
}

// BenchmarkPersistWarmStart measures the same first-result latency
// when the data dir already holds the result: boot replays the
// journal and the submission is a disk-tier artifact-cache hit — the
// number to compare against BenchmarkPersistColdStart.
func BenchmarkPersistWarmStart(b *testing.B) {
	dir, err := os.MkdirTemp(b.TempDir(), "warm")
	if err != nil {
		b.Fatal(err)
	}
	if benchRun(b, dir) { // seed the artifact cache
		b.Fatal("seeding run reported a disk hit")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !benchRun(b, dir) {
			b.Fatal("warm run missed the artifact cache")
		}
	}
}

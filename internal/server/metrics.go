package server

import (
	"fmt"
	"sort"
	"strings"

	"balsabm/internal/api"
)

// PrometheusText renders the daemon counters in the Prometheus text
// exposition format (hand-rolled; the repo is standard-library only).
// Series are emitted in sorted label order so scrapes are
// deterministic and diffable.
func PrometheusText(m *api.MetricsJSON) string {
	var sb strings.Builder
	line := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }

	line("# HELP balsabmd_jobs_total Jobs by current state.")
	line("# TYPE balsabmd_jobs_total gauge")
	states := make([]string, 0, len(m.JobsByState))
	for s := range m.JobsByState {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		line("balsabmd_jobs_total{state=%q} %d", s, m.JobsByState[s])
	}

	line("# HELP balsabmd_queue_depth Jobs waiting for an executor.")
	line("# TYPE balsabmd_queue_depth gauge")
	line("balsabmd_queue_depth %d", m.QueueDepth)

	line("# HELP balsabmd_dedup_hits_total Jobs served from the request dedup cache.")
	line("# TYPE balsabmd_dedup_hits_total counter")
	line("balsabmd_dedup_hits_total %d", m.DedupHits)
	line("# HELP balsabmd_dedup_misses_total Jobs that ran the flow.")
	line("# TYPE balsabmd_dedup_misses_total counter")
	line("balsabmd_dedup_misses_total %d", m.DedupMisses)

	line("# HELP balsabmd_flow_cache_hits_total Canonical-form synthesis cache hits across jobs.")
	line("# TYPE balsabmd_flow_cache_hits_total counter")
	line("balsabmd_flow_cache_hits_total %d", m.FlowCacheHits)
	line("# HELP balsabmd_flow_cache_misses_total Canonical-form synthesis cache misses across jobs.")
	line("# TYPE balsabmd_flow_cache_misses_total counter")
	line("balsabmd_flow_cache_misses_total %d", m.FlowCacheMisses)

	line("# HELP balsabmd_store_hits_total Results served from the result cache, by tier (disk = on-disk artifact store, memory = in-process memo).")
	line("# TYPE balsabmd_store_hits_total counter")
	line("balsabmd_store_hits_total{tier=%q} %d", "disk", m.StoreDiskHits)
	line("balsabmd_store_hits_total{tier=%q} %d", "memory", m.StoreMemHits)
	line("# HELP balsabmd_store_misses_total Jobs that missed every result-cache tier and executed the flow.")
	line("# TYPE balsabmd_store_misses_total counter")
	line("balsabmd_store_misses_total %d", m.StoreMisses)

	line("# HELP balsabmd_incremental_controllers_total Controller syntheses by outcome (reused = spliced from the controller-grain artifact cache, resynthesized = computed afresh and written back).")
	line("# TYPE balsabmd_incremental_controllers_total counter")
	line("balsabmd_incremental_controllers_total{outcome=%q} %d", "resynthesized", m.ControllersResynthesized)
	line("balsabmd_incremental_controllers_total{outcome=%q} %d", "reused", m.ControllersReused)

	line("# HELP balsabmd_jobs_resumed_total Jobs re-enqueued from the journal at boot.")
	line("# TYPE balsabmd_jobs_resumed_total counter")
	line("balsabmd_jobs_resumed_total %d", m.JobsResumed)
	line("# HELP balsabmd_checkpoints_total Pipeline-stage checkpoints, by direction.")
	line("# TYPE balsabmd_checkpoints_total counter")
	line("balsabmd_checkpoints_total{op=%q} %d", "restored", m.CheckpointsRestored)
	line("balsabmd_checkpoints_total{op=%q} %d", "saved", m.CheckpointsSaved)

	if m.Store != nil {
		line("# HELP balsabmd_store_artifacts Result blobs in the artifact cache.")
		line("# TYPE balsabmd_store_artifacts gauge")
		line("balsabmd_store_artifacts %d", m.Store.Artifacts)
		line("# HELP balsabmd_store_artifact_bytes Bytes held by the artifact cache.")
		line("# TYPE balsabmd_store_artifact_bytes gauge")
		line("balsabmd_store_artifact_bytes %d", m.Store.ArtifactBytes)
		line("# HELP balsabmd_store_corrupt_total Artifacts that failed read-back verification this session.")
		line("# TYPE balsabmd_store_corrupt_total counter")
		line("balsabmd_store_corrupt_total %d", m.Store.Corrupt)
		line("# HELP balsabmd_store_controller_refs Controller-grain refs in the artifact cache (incremental resynthesis tier).")
		line("# TYPE balsabmd_store_controller_refs gauge")
		line("balsabmd_store_controller_refs %d", m.Store.ControllerRefs)
	}

	line("# HELP balsabmd_minimize_functions_total Functions minimized, by solver path.")
	line("# TYPE balsabmd_minimize_functions_total counter")
	line("balsabmd_minimize_functions_total{path=%q} %d", "exact", m.MinimizeExact)
	line("balsabmd_minimize_functions_total{path=%q} %d", "greedy", m.MinimizeGreedy)

	line("# HELP balsabmd_minimize_enum_nodes_total Prime-enumeration nodes visited by the minimizer.")
	line("# TYPE balsabmd_minimize_enum_nodes_total counter")
	line("balsabmd_minimize_enum_nodes_total %d", m.EnumNodes)
	line("# HELP balsabmd_minimize_branch_nodes_total Covering branch-and-bound nodes visited by the minimizer.")
	line("# TYPE balsabmd_minimize_branch_nodes_total counter")
	line("balsabmd_minimize_branch_nodes_total %d", m.BranchNodes)

	line("# HELP balsabmd_bmlint_diags_total Burst-Mode spec diagnostics surfaced by the bmlint gates, by code.")
	line("# TYPE balsabmd_bmlint_diags_total counter")
	bmCodes := make([]string, 0, len(m.BmlintDiags))
	for c := range m.BmlintDiags {
		bmCodes = append(bmCodes, c)
	}
	sort.Strings(bmCodes)
	for _, c := range bmCodes {
		line("balsabmd_bmlint_diags_total{code=%q} %d", c, m.BmlintDiags[c])
	}

	line("# HELP balsabmd_hazver_diags_total Static hazard-verification diagnostics surfaced by the hazver gates, by code.")
	line("# TYPE balsabmd_hazver_diags_total counter")
	hzCodes := make([]string, 0, len(m.HazverDiags))
	for c := range m.HazverDiags {
		hzCodes = append(hzCodes, c)
	}
	sort.Strings(hzCodes)
	for _, c := range hzCodes {
		line("balsabmd_hazver_diags_total{code=%q} %d", c, m.HazverDiags[c])
	}

	line("# HELP balsabmd_netlint_diags_total Netlist diagnostics surfaced by the netlint gates, by code.")
	line("# TYPE balsabmd_netlint_diags_total counter")
	codes := make([]string, 0, len(m.NetlintDiags))
	for c := range m.NetlintDiags {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		line("balsabmd_netlint_diags_total{code=%q} %d", c, m.NetlintDiags[c])
	}

	line("# HELP balsabmd_stage_runs_total Completed pipeline-stage units.")
	line("# TYPE balsabmd_stage_runs_total counter")
	stages := make([]string, 0, len(m.Stages))
	for s := range m.Stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		line("balsabmd_stage_runs_total{stage=%q} %d", s, m.Stages[s].Count)
	}
	line("# HELP balsabmd_stage_seconds_total Wall-clock spent per pipeline stage.")
	line("# TYPE balsabmd_stage_seconds_total counter")
	for _, s := range stages {
		line("balsabmd_stage_seconds_total{stage=%q} %.6f", s, float64(m.Stages[s].TotalMicros)/1e6)
	}
	return sb.String()
}

package server

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"time"

	"balsabm/internal/api"
	"balsabm/internal/core"
	"balsabm/internal/flow"
	"balsabm/internal/store"
)

// This file is the manager's durable side: boot-time journal replay,
// the disk tier of the result lookup, completion journaling, and the
// per-job checkpoint sink. Everything here is inert when the manager
// runs without a store.

// replayJournal rebuilds the job table from the store's journal:
// terminal jobs reappear with their recorded states (done results load
// lazily from the artifact cache), and jobs the previous process never
// finished come back queued, to be re-enqueued by NewManager ahead of
// new submissions. Runs before the workers start, so no locking.
func (m *Manager) replayJournal() []*Job {
	var resumable []*Job
	for _, rec := range m.store.Jobs() {
		var req api.JobRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			continue // unreadable request: nothing to resume
		}
		exec, key, err := prepare(req)
		if err != nil {
			continue // no longer valid (e.g. a design was renamed)
		}
		ctx, cancel := context.WithCancel(m.ctx)
		j := &Job{
			ID:       rec.ID,
			Req:      req,
			Key:      key,
			ctx:      ctx,
			cancel:   cancel,
			events:   newBroker(m.cfg.History),
			met:      &flow.Metrics{},
			exec:     exec,
			done:     make(chan struct{}),
			created:  parseStamp(rec.Created),
			started:  parseStamp(rec.Started),
			finished: parseStamp(rec.Finished),
		}
		switch rec.State {
		case "done":
			j.state = api.StateDone
			j.disk = true
			j.load = func() *api.JobResult { return m.loadResult(key) }
			m.sealReplayed(j, api.Event{Type: "state", State: api.StateDone, Disk: true})
		case "failed":
			j.state = api.StateFailed
			j.err = rec.Error
			m.sealReplayed(j, api.Event{Type: "state", State: api.StateFailed, Error: rec.Error})
		case "canceled":
			j.state = api.StateCanceled
			m.sealReplayed(j, api.Event{Type: "state", State: api.StateCanceled})
		default:
			// Interrupted mid-flight: back on the queue, resuming from
			// whatever stages its checkpoints cover.
			j.state = api.StateQueued
			j.started = time.Time{} // the new run stamps its own start
			if n := len(rec.Checkpoints); n > 0 {
				j.resumedFrom = rec.Checkpoints[n-1]
			}
			m.hookJob(j)
			j.events.publish(api.Event{Type: "state", State: api.StateQueued})
			m.jobsResumed.Add(1)
			resumable = append(resumable, j)
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		if n := idNumber(rec.ID); n > m.nextID {
			m.nextID = n
		}
	}
	return resumable
}

// sealReplayed finalizes a journal-replayed terminal job: one state
// event for late stream subscribers, then the closed-stream marker.
func (m *Manager) sealReplayed(j *Job, ev api.Event) {
	j.events.publish(ev)
	j.events.close()
	close(j.done)
	j.cancel()
}

// idNumber parses the numeric part of a job ID ("j00042" -> 42).
func idNumber(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func parseStamp(s string) time.Time {
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

// diskLookup is the first tier of run's result lookup: the artifact
// cache on disk. Corrupt or undecodable blobs degrade to a miss (the
// store already removed a corrupt entry, so the recomputed result
// heals it).
func (m *Manager) diskLookup(j *Job) *api.JobResult {
	if m.store == nil {
		return nil
	}
	blob, err := m.store.GetResult(j.Key)
	if err != nil || blob == nil {
		return nil
	}
	var res api.JobResult
	if err := json.Unmarshal(blob, &res); err != nil {
		return nil
	}
	return &res
}

// loadResult fetches a replayed job's result blob by key (nil once GC
// evicted it).
func (m *Manager) loadResult(key string) *api.JobResult {
	blob, err := m.store.GetResult(key)
	if err != nil || blob == nil {
		return nil
	}
	var res api.JobResult
	if err := json.Unmarshal(blob, &res); err != nil {
		return nil
	}
	return &res
}

// journalDone persists a completed job: the result blob (canonical
// api.Encode bytes, so a disk-served result is byte-identical to a
// fresh one) into the artifact cache, the completion record into the
// journal, and the job's now-superseded checkpoints out of the way.
func (m *Manager) journalDone(j *Job, res *api.JobResult) {
	if m.store == nil {
		return
	}
	blob, err := api.Encode(res)
	if err != nil {
		return
	}
	if _, err := m.store.PutResult(j.Key, blob); err != nil {
		return
	}
	m.store.AppendDone(j.ID, store.ContentHash(blob), m.stamp(m.cfg.Clock()))
	m.store.DeleteCheckpoints(j.Key)
}

// sink builds the checkpoint sink handed to a job's executor: stage
// payloads land in the store's checkpoint directory for the job's key,
// each save is journaled (so a restart knows where to resume), and a
// "checkpoint" event reaches the job's progress stream. Nil without a
// store — the flow skips checkpointing entirely.
func (m *Manager) sink(j *Job) flow.CheckpointSink {
	if m.store == nil {
		return nil
	}
	return &jobSink{dir: m.store.Checkpoints(j.Key), m: m, j: j}
}

type jobSink struct {
	dir *store.CheckpointDir
	m   *Manager
	j   *Job
}

func (s *jobSink) Load(stage string) ([]byte, bool) { return s.dir.Load(stage) }

func (s *jobSink) Save(stage string, data []byte) {
	s.dir.Save(stage, data)
	s.m.store.AppendCheckpoint(s.j.ID, s.j.Key, stage)
	s.j.events.publish(api.Event{Type: "checkpoint", Stage: stage})
}

// stageSynthCluster is the one checkpointable stage of a KindSynth
// job's server-side preamble (the flow stages inside SynthesizeNetlist
// are per-controller and cheap to redo; clustering is the expensive
// sequential prefix).
const stageSynthCluster = "cluster"

// loadSynthCluster restores a KindSynth job's clustering stage. Any
// miss, decode failure or unparseable netlist is a plain miss.
func loadSynthCluster(ck flow.CheckpointSink) (*core.Netlist, *api.ReportJSON, bool) {
	if ck == nil {
		return nil, nil, false
	}
	data, ok := ck.Load(stageSynthCluster)
	if !ok {
		return nil, nil, false
	}
	var cp synthClusterCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, nil, false
	}
	n, err := core.ParseNetlist(cp.Netlist)
	if err != nil {
		return nil, nil, false
	}
	return n, cp.Report, true
}

func saveSynthCluster(ck flow.CheckpointSink, n *core.Netlist, rep *api.ReportJSON) {
	if ck == nil {
		return
	}
	data, err := json.Marshal(synthClusterCheckpoint{Netlist: n.Format(), Report: rep})
	if err != nil {
		return
	}
	ck.Save(stageSynthCluster, data)
}

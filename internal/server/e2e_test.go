package server

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"balsabm/internal/api"
	"balsabm/internal/cell"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/flow"
	"balsabm/internal/techmap"
)

// TestE2EDesignByteIdentical proves the acceptance criterion: a design
// submitted over HTTP yields byte-identical results to the in-process
// flow, and a repeated submission is served from the dedup cache,
// observable via the /metrics hit count.
func TestE2EDesignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full flow on the systolic counter")
	}
	_, hs, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	// In-process reference run, encoded with the shared api encoder.
	r, err := flow.RunDesign(designs.SystolicCounter(), &flow.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := api.Encode(api.FromDesignResult(r))
	if err != nil {
		t.Fatal(err)
	}

	// The same design over HTTP.
	req := api.JobRequest{Kind: api.KindDesign, Design: "systolic-counter",
		Config: api.FlowConfig{Workers: 2}}
	res, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := api.Encode(res.Design)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, remote) {
		t.Fatalf("HTTP result differs from in-process flow:\n--- direct ---\n%s\n--- remote ---\n%s",
			direct, remote)
	}

	// Submitting the identical design again must not re-run the flow.
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || !st.Dedup {
		t.Fatalf("repeat submission: state=%s dedup=%v, want done/true", st.State, st.Dedup)
	}
	res2, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	remote2, err := api.Encode(res2.Design)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, remote2) {
		t.Fatal("dedup-served result differs from the first run")
	}

	// The hit is observable on /metrics.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.DedupHits != 1 {
		t.Fatalf("dedup hits = %d, want 1", m.DedupHits)
	}
	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "balsabmd_dedup_hits_total 1") {
		t.Fatalf("/metrics missing dedup hit count:\n%s", buf.String())
	}
}

// TestE2ESynthByteIdenticalNetlists proves submitted sources come back
// with netlists byte-identical to the in-process pipeline: clustering,
// synthesis and mapping of the systolic counter's control netlist,
// compared as emitted Verilog.
func TestE2ESynthByteIdenticalNetlists(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes the systolic counter control netlist")
	}
	_, _, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	control := designs.SystolicCounter().Control()
	source := control.Format()

	// In-process reference: cluster, synthesize speed-split, emit
	// Verilog per controller.
	optimized, _, err := core.OptimizeOpt(control, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mapped, ctrls, err := flow.SynthesizeNetlist(optimized, techmap.SpeedSplit, &flow.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.AMS035()

	res, err := c.Run(ctx, api.JobRequest{Kind: api.KindSynth, Source: source,
		Mode: api.ModeOpt, Config: api.FlowConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Synth == nil || len(res.Synth.Controllers) != len(mapped) {
		t.Fatalf("synth returned %d controllers, want %d", len(res.Synth.Controllers), len(mapped))
	}
	for i, sc := range res.Synth.Controllers {
		wantV := techmap.VerilogModules(mapped[i], lib)
		if sc.Verilog != wantV {
			t.Errorf("controller %s: Verilog differs from in-process mapping", ctrls[i].Name)
		}
		want := api.FromControllerResult(ctrls[i])
		if sc.Controller != want {
			t.Errorf("controller %s: summary %+v, want %+v", ctrls[i].Name, sc.Controller, want)
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"balsabm/internal/api"
)

// twoSequencers is a small CH control netlist: a sequencer activating
// a second sequencer over channel l1.
const twoSequencers = `
(program seq_a (rep (enc-early (p-to-p passive root)
    (seq (p-to-p active l1) (p-to-p active l2)))))
(program seq_b (rep (enc-early (p-to-p passive l1)
    (seq (p-to-p active x1) (p-to-p active x2)))))
`

// twoSequencersReformatted is the same netlist with different
// whitespace; it must dedup against twoSequencers.
const twoSequencersReformatted = `
(program seq_a
  (rep (enc-early (p-to-p passive root) (seq (p-to-p active l1) (p-to-p active l2)))))
(program seq_b
  (rep (enc-early (p-to-p passive l1) (seq (p-to-p active x1) (p-to-p active x2)))))
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	c := NewClient(hs.URL)
	c.HTTP = hs.Client()
	return s, hs, c
}

func TestSubmitValidation(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	cases := []api.JobRequest{
		{Kind: "bogus"},
		{Kind: api.KindDesign, Design: "no-such-design"},
		{Kind: api.KindSynth, Source: ""},
		{Kind: api.KindSynth, Source: "(not a program"},
		{Kind: api.KindSynth, Source: twoSequencers, Mode: "sideways"},
		{Kind: api.KindSynth, Source: twoSequencers, Format: "vhdl"},
	}
	for _, req := range cases {
		if _, err := c.Submit(ctx, req); err == nil {
			t.Errorf("Submit(%+v) succeeded, want validation error", req)
		}
	}

	// Unknown JSON fields are rejected too.
	resp, err := hs.Client().Post(hs.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"table3","bogusField":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestNotFoundAndHealth(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Status(ctx, "j99999"); err == nil {
		t.Error("Status of unknown job succeeded, want 404 error")
	}
	if _, err := c.Result(ctx, "j99999"); err == nil {
		t.Error("Result of unknown job succeeded, want 404 error")
	}
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}

func TestDesignsEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	names, err := c.Designs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"systolic-counter", "wagging-register", "stack", "ssem"}
	if len(names) != len(want) {
		t.Fatalf("designs = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("designs = %v, want %v", names, want)
		}
	}
}

// testManagerNoWorkers builds a manager whose queue nobody drains, so
// queue and cancellation behavior is deterministic.
func testManagerNoWorkers(queueDepth int) *Manager {
	cfg := Config{QueueDepth: queueDepth}.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *Job, queueDepth),
		jobs:   map[string]*Job{},
	}
}

func TestQueueFull(t *testing.T) {
	m := testManagerNoWorkers(1)
	defer m.cancel()
	req := api.JobRequest{Kind: api.KindSynth, Source: twoSequencers}
	if _, err := m.Submit(req); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit error = %v, want ErrQueueFull", err)
	}
	if got := m.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d, want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := testManagerNoWorkers(4)
	defer m.cancel()
	j, err := m.Submit(api.JobRequest{Kind: api.KindSynth, Source: twoSequencers})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(j.ID) {
		t.Fatal("Cancel returned false for existing job")
	}
	st := j.Status()
	if st.State != api.StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("done channel not closed after cancellation")
	}
	if m.Metrics().JobsByState[api.StateCanceled] != 1 {
		t.Fatal("metrics do not count the canceled job")
	}
}

func TestSynthJobLifecycleAndDedup(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	st, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: twoSequencers, Mode: api.ModeUnopt})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateQueued && st.State != api.StateRunning {
		t.Fatalf("initial state = %s", st.State)
	}
	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Dedup {
		t.Fatalf("first job: state=%s dedup=%v, want done/false", st.State, st.Dedup)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != api.KindSynth || res.Synth == nil || len(res.Synth.Controllers) != 2 {
		t.Fatalf("unexpected synth result: %+v", res)
	}
	for _, sc := range res.Synth.Controllers {
		if !strings.Contains(sc.Verilog, "module") {
			t.Fatalf("controller %s: no Verilog emitted", sc.Controller.Name)
		}
	}

	// The reformatted source canonicalizes to the same key: dedup hit.
	st2, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: twoSequencersReformatted, Mode: api.ModeUnopt})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Key != st.Key {
		t.Fatalf("reformatted source got key %s, want %s", st2.Key, st.Key)
	}
	st2, err = c.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != api.StateDone || !st2.Dedup {
		t.Fatalf("duplicate job: state=%s dedup=%v, want done/true", st2.State, st2.Dedup)
	}
	res2, err := c.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := api.Encode(res)
	b2, _ := api.Encode(res2)
	if string(b1) != string(b2) {
		t.Fatal("dedup-served result differs from the original")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.DedupHits != 1 || m.DedupMisses != 1 {
		t.Fatalf("dedup counters hits=%d misses=%d, want 1/1", m.DedupHits, m.DedupMisses)
	}
}

func TestEventsStream(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: twoSequencers, Mode: api.ModeUnopt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	// The stream of a finished job replays its whole history and ends.
	reqCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet,
		hs.URL+"/api/v1/jobs/"+st.ID+"/events", nil)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	var states []string
	var sawStage bool
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch ev.Type {
		case "state":
			states = append(states, ev.State)
		case "stage":
			sawStage = true
			if ev.Stage == "" || ev.Count <= 0 {
				t.Fatalf("malformed stage event: %+v", ev)
			}
		}
	}
	wantStates := []string{api.StateQueued, api.StateRunning, api.StateDone}
	if len(states) != len(wantStates) {
		t.Fatalf("state events %v, want %v", states, wantStates)
	}
	for i := range wantStates {
		if states[i] != wantStates[i] {
			t.Fatalf("state events %v, want %v", states, wantStates)
		}
	}
	if !sawStage {
		t.Fatal("no stage progress events in stream")
	}
}

func TestMetricsTextFormat(t *testing.T) {
	_, hs, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, api.JobRequest{Kind: api.KindSynth, Source: twoSequencers, Mode: api.ModeUnopt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`balsabmd_jobs_total{state="done"} 1`,
		"balsabmd_queue_depth 0",
		"balsabmd_dedup_misses_total 1",
		`balsabmd_stage_runs_total{stage="compile"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"balsabm/internal/api"
)

// Client talks to a balsabmd daemon. It backs the CLI's -server mode,
// so a workstation CLI and a shared daemon present identical results.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8337".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Lint runs the chlint analyzer on the daemon (POST /api/v1/lint).
func (c *Client) Lint(ctx context.Context, req api.LintRequest) (*api.LintResultJSON, error) {
	var out api.LintResultJSON
	if err := c.do(ctx, http.MethodPost, "/api/v1/lint", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Bmlint compiles a design's Burst-Mode specs on the daemon (or lints
// one .bms spec) and returns the bmlint audit per spec
// (POST /api/v1/bmlint).
func (c *Client) Bmlint(ctx context.Context, req api.BmlintRequest) (*api.BmlintResultJSON, error) {
	var out api.BmlintResultJSON
	if err := c.do(ctx, http.MethodPost, "/api/v1/bmlint", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Netlint synthesizes a design on the daemon (no simulation) and
// returns its structural audit (POST /api/v1/netlint).
func (c *Client) Netlint(ctx context.Context, req api.NetlintRequest) (*api.NetlintResultJSON, error) {
	var out api.NetlintResultJSON
	if err := c.do(ctx, http.MethodPost, "/api/v1/netlint", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Hazver synthesizes a design on the daemon (no simulation) and
// returns its static hazard verification (POST /api/v1/hazver).
func (c *Client) Hazver(ctx context.Context, req api.HazverRequest) (*api.HazverResultJSON, error) {
	var out api.HazverResultJSON
	if err := c.do(ctx, http.MethodPost, "/api/v1/hazver", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do issues one request and decodes the JSON response into out
// (skipped when out is nil). Non-2xx responses decode the server's
// error body into the returned error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("server: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(ctx context.Context, req api.JobRequest) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &st)
	return st, err
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Wait long-polls until the job reaches a terminal state (or ctx
// ends).
func (c *Client) Wait(ctx context.Context, id string) (api.JobStatus, error) {
	for {
		var st api.JobStatus
		err := c.do(ctx, http.MethodGet,
			"/api/v1/jobs/"+url.PathEscape(id)+"?wait="+url.QueryEscape("30s"), nil, &st)
		if err != nil {
			return st, err
		}
		switch st.State {
		case api.StateDone, api.StateFailed, api.StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Result fetches a finished job's result.
func (c *Client) Result(ctx context.Context, id string) (*api.JobResult, error) {
	var out api.JobResult
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id)+"/result", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+url.PathEscape(id), nil, nil)
}

// Metrics fetches the daemon counters.
func (c *Client) Metrics(ctx context.Context) (*api.MetricsJSON, error) {
	var out api.MetricsJSON
	if err := c.do(ctx, http.MethodGet, "/api/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Designs lists the daemon's built-in benchmark designs.
func (c *Client) Designs(ctx context.Context) ([]string, error) {
	var out []string
	if err := c.do(ctx, http.MethodGet, "/api/v1/designs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Run submits a job, waits for it, and returns its result. A failed
// or cancelled job returns the server-side error.
func (c *Client) Run(ctx context.Context, req api.JobRequest) (*api.JobResult, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if st.State != api.StateDone {
		if st.Error != "" {
			return nil, fmt.Errorf("server: job %s %s: %s", st.ID, st.State, st.Error)
		}
		return nil, fmt.Errorf("server: job %s %s", st.ID, st.State)
	}
	return c.Result(ctx, st.ID)
}

package server

import (
	"sync"

	"balsabm/internal/api"
)

// broker is one job's progress stream: a bounded replay buffer plus
// live fan-out to subscribers. Publishing never blocks — a subscriber
// whose channel is full simply misses that event, which is harmless
// because stage events carry cumulative counters and the terminal
// state is always observable from the job status.
type broker struct {
	mu      sync.Mutex
	seq     int64
	history []api.Event
	maxHist int
	subs    map[chan api.Event]struct{}
	closed  bool
}

func newBroker(maxHist int) *broker {
	return &broker{maxHist: maxHist, subs: map[chan api.Event]struct{}{}}
}

// publish assigns the next sequence number, records the event for
// replay and fans it out to live subscribers.
func (b *broker) publish(ev api.Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	b.history = append(b.history, ev)
	if len(b.history) > b.maxHist {
		b.history = b.history[len(b.history)-b.maxHist:]
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, cumulative events recover
		}
	}
	b.mu.Unlock()
}

// subscribe returns the replay of retained events and a live channel.
// The channel is closed when the job's stream ends. The caller must
// call the returned cancel function when done reading.
func (b *broker) subscribe() (replay []api.Event, ch chan api.Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]api.Event(nil), b.history...)
	ch = make(chan api.Event, 64)
	if b.closed {
		close(ch)
		return replay, ch, func() {}
	}
	b.subs[ch] = struct{}{}
	return replay, ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// close ends the stream: all subscriber channels close and further
// publishes are dropped.
func (b *broker) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for ch := range b.subs {
			delete(b.subs, ch)
			close(ch)
		}
	}
	b.mu.Unlock()
}

package balsabm

import (
	"strings"
	"testing"
)

// The public API supports the full quickstart path.
func TestFacadeQuickstart(t *testing.T) {
	body, err := ParseCH(`(rep (enc-early (p-to-p passive P)
	    (seq (p-to-p active A1) (p-to-p active A2))))`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCH(body); err != nil {
		t.Fatal(err)
	}
	spec, err := CompileCH(&CHProgram{Name: "seq2", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if spec.NStates != 6 {
		t.Fatalf("states %d", spec.NStates)
	}
	ctrl, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	lib := DefaultLibrary()
	nl, err := Map(ctrl, MapSpeedSplit, lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditMapped(ctrl, nl, lib); err != nil {
		t.Fatal(err)
	}
	if nl.Area(lib) <= 0 {
		t.Fatal("no area")
	}
}

func TestFacadeDesigns(t *testing.T) {
	if len(Designs()) != 4 {
		t.Fatalf("want 4 designs")
	}
	d, err := DesignByName("stack")
	if err != nil {
		t.Fatal(err)
	}
	before := d.Control()
	after, rep, err := Optimize(before)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Components) >= len(before.Components) {
		t.Fatal("no clustering")
	}
	if len(rep.Merges) == 0 {
		t.Fatal("no merges reported")
	}
}

func TestFacadeBalsa(t *testing.T) {
	src, err := BalsaSource("counter8")
	if err != nil {
		t.Fatal(err)
	}
	n, err := CompileBalsa(src, "counter8")
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats().Control != 6 {
		t.Fatalf("control components: %d", n.Stats().Control)
	}
}

func TestFacadeVerify(t *testing.T) {
	x, err := ParseCHProgram(`(program act (rep (enc-early (p-to-p passive a) (p-to-p active c))))`)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ParseCHProgram(`(program low (rep (enc-early (p-to-p passive c) (p-to-p active d))))`)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyActivationChannelRemoval("c", x, y); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRunDesign(t *testing.T) {
	d, err := DesignByName("systolic-counter")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedImprovement() <= 0 || r.AreaOverhead() <= 0 {
		t.Fatalf("improvement %.2f%%, overhead %.2f%%", r.SpeedImprovement(), r.AreaOverhead())
	}
	table := Table3([]*DesignResult{r})
	if !strings.Contains(table, "systolic-counter") {
		t.Fatalf("table:\n%s", table)
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure index (see EXPERIMENTS.md for measured-vs-paper values):
//
//	BenchmarkTable1            — operator/argument legality matrix
//	BenchmarkTable2            — four-phase expansions per operator
//	BenchmarkFig3*             — BM specs of sequencer/call/passivator
//	BenchmarkFig4              — activation channel removal example
//	BenchmarkFig5              — call distribution example
//	BenchmarkVerifyAllPairs    — Section 4.3 conformance experiment
//	BenchmarkTable3_*          — the four design flows (speed/area)
//	BenchmarkSynthesize*       — Minimalist-substitute ablations
package balsabm

import (
	"fmt"
	"testing"

	"balsabm/internal/ch"
	"balsabm/internal/core"
	"balsabm/internal/techmap"
)

// BenchmarkTable1 evaluates the full Table 1 legality matrix.
func BenchmarkTable1(b *testing.B) {
	ops := []ch.OpKind{ch.EncEarly, ch.EncMiddle, ch.EncLate, ch.Seq, ch.SeqOv, ch.Mutex}
	acts := []ch.Activity{ch.Active, ch.Passive}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		legal := 0
		for _, op := range ops {
			for _, a := range acts {
				for _, c := range acts {
					if ch.Legal(op, a, c) {
						legal++
					}
				}
			}
		}
		if legal != 13 {
			b.Fatalf("Table 1 has %d legal cells, want 13", legal)
		}
	}
}

// BenchmarkTable2 computes every Table 2 expansion.
func BenchmarkTable2(b *testing.B) {
	srcs := []string{
		"(enc-early (p-to-p active a) (p-to-p active b))",
		"(enc-early (p-to-p passive a) (p-to-p active b))",
		"(enc-early (p-to-p passive a) (p-to-p passive b))",
		"(enc-late (p-to-p passive a) (p-to-p active b))",
		"(enc-late (p-to-p passive a) (p-to-p passive b))",
		"(enc-middle (p-to-p active a) (p-to-p active b))",
		"(enc-middle (p-to-p passive a) (p-to-p active b))",
		"(enc-middle (p-to-p passive a) (p-to-p passive b))",
		"(seq (p-to-p active a) (p-to-p active b))",
		"(seq (p-to-p passive a) (p-to-p active b))",
		"(seq (p-to-p passive a) (p-to-p passive b))",
		"(seq-ov (p-to-p active a) (p-to-p active b))",
		"(mutex (p-to-p passive a) (p-to-p passive b))",
	}
	exprs := make([]ch.Expr, len(srcs))
	for i, s := range srcs {
		e, err := ch.Parse(s)
		if err != nil {
			b.Fatal(err)
		}
		exprs[i] = e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range exprs {
			if _, err := ch.Expand(e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func mustProgram(b *testing.B, name, src string) *CHProgram {
	b.Helper()
	body, err := ParseCH(src)
	if err != nil {
		b.Fatal(err)
	}
	return &CHProgram{Name: name, Body: body}
}

// Fig 3: the three modelling examples compile to their published specs.
func benchFig3(b *testing.B, name, src string, states int) {
	p := mustProgram(b, name, src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, err := CompileCH(p)
		if err != nil {
			b.Fatal(err)
		}
		if sp.NStates != states {
			b.Fatalf("%s: %d states, want %d", name, sp.NStates, states)
		}
	}
}

func BenchmarkFig3Sequencer(b *testing.B) {
	benchFig3(b, "sequencer",
		`(rep (enc-early (p-to-p passive P) (seq (p-to-p active A1) (p-to-p active A2))))`, 6)
}

func BenchmarkFig3Call(b *testing.B) {
	benchFig3(b, "call",
		`(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B))
		            (enc-early (p-to-p passive A2) (p-to-p active B))))`, 7)
}

func BenchmarkFig3Passivator(b *testing.B) {
	benchFig3(b, "passivator",
		`(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))`, 2)
}

// Fig 4: decision-wait + sequencer merge into the 11-state controller.
func BenchmarkFig4(b *testing.B) {
	dw := mustProgram(b, "dw", `(rep (enc-early (p-to-p passive a1)
	    (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
	           (enc-early (p-to-p passive i2) (p-to-p active o2)))))`)
	seq := mustProgram(b, "seq", `(rep (enc-early (p-to-p passive o2)
	    (seq (p-to-p active c1) (p-to-p active c2))))`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := &core.Netlist{Components: []*CHProgram{dw.Clone(), seq.Clone()}}
		out, _, err := Optimize(n)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := CompileCH(out.Components[0])
		if err != nil {
			b.Fatal(err)
		}
		if sp.NStates != 11 {
			b.Fatalf("%d states, want 11", sp.NStates)
		}
	}
}

// Fig 5: sequencer + call distribute into the 6-state controller.
func BenchmarkFig5(b *testing.B) {
	seq := mustProgram(b, "seq", `(rep (enc-early (p-to-p passive a)
	    (seq (p-to-p active b1) (p-to-p active b2))))`)
	call := mustProgram(b, "call", `(rep (mutex
	    (enc-early (p-to-p passive b1) (p-to-p active c))
	    (enc-early (p-to-p passive b2) (p-to-p active c))))`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := &core.Netlist{Components: []*CHProgram{seq.Clone(), call.Clone()}}
		out, _, err := Optimize(n)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := CompileCH(out.Components[0])
		if err != nil {
			b.Fatal(err)
		}
		if sp.NStates != 6 {
			b.Fatalf("%d states, want 6", sp.NStates)
		}
	}
}

// Section 4.3: the full conformance verification grid.
func BenchmarkVerifyAllPairs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results := core.VerifyAllPairs()
		for pair, err := range results {
			if err != nil {
				b.Fatalf("%v: %v", pair, err)
			}
		}
	}
}

// Table 3: one benchmark per design row, running the complete two-arm
// flow (synthesis, mapping, audit, gate-level simulation).
func benchTable3(b *testing.B, name string) {
	d, err := DesignByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := RunDesign(d, nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.SpeedImprovement() <= 0 || r.AreaOverhead() <= 0 {
			b.Fatalf("%s: improvement %.2f%%, overhead %.2f%%",
				name, r.SpeedImprovement(), r.AreaOverhead())
		}
		b.ReportMetric(r.SpeedImprovement(), "speedup%")
		b.ReportMetric(r.AreaOverhead(), "overhead%")
	}
}

func BenchmarkTable3_SystolicCounter(b *testing.B) { benchTable3(b, "systolic-counter") }
func BenchmarkTable3_WaggingRegister(b *testing.B) { benchTable3(b, "wagging-register") }
func BenchmarkTable3_Stack(b *testing.B)           { benchTable3(b, "stack") }
func BenchmarkTable3_SSEM(b *testing.B)            { benchTable3(b, "ssem") }

// The mapped-logic audit kernel in isolation: synthesize and map every
// optimized controller of a design once, then time AuditMapped alone —
// the hot path (92% of flow wall-clock before the compiled evaluator)
// that the bit-parallel engine targets.
func benchCheckMapped(b *testing.B, name string) {
	d, err := DesignByName(name)
	if err != nil {
		b.Fatal(err)
	}
	lib := DefaultLibrary()
	opt, _, err := Optimize(d.Control())
	if err != nil {
		b.Fatal(err)
	}
	type pair struct {
		ctrl *Controller
		nl   *GateNetlist
	}
	var pairs []pair
	for _, comp := range opt.Components {
		sp, err := CompileCH(comp)
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := Synthesize(sp)
		if err != nil {
			b.Fatal(err)
		}
		nl, err := Map(ctrl, techmap.SpeedSplit, lib)
		if err != nil {
			b.Fatal(err)
		}
		pairs = append(pairs, pair{ctrl, nl})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			if err := AuditMapped(p.ctrl, p.nl, lib); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCheckMapped(b *testing.B) {
	for _, name := range []string{"systolic-counter", "wagging-register", "stack", "ssem"} {
		b.Run(name, func(b *testing.B) { benchCheckMapped(b, name) })
	}
}

// Worker scaling: the same two-arm flow at a single worker versus all
// cores. Results are byte-identical by construction (see
// flow.Options.Workers), so the reported speedup%/overhead% metrics
// must agree between the two variants; on a multicore host the
// wall-clock ratio shows the pool's gain.
func benchTable3Workers(b *testing.B, name string, workers int) {
	d, err := DesignByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := RunDesign(d, &FlowOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if r.SpeedImprovement() <= 0 || r.AreaOverhead() <= 0 {
			b.Fatalf("%s: improvement %.2f%%, overhead %.2f%%",
				name, r.SpeedImprovement(), r.AreaOverhead())
		}
		b.ReportMetric(r.SpeedImprovement(), "speedup%")
		b.ReportMetric(r.AreaOverhead(), "overhead%")
	}
}

func BenchmarkTable3_SSEM_Workers1(b *testing.B)   { benchTable3Workers(b, "ssem", 1) }
func BenchmarkTable3_SSEM_WorkersMax(b *testing.B) { benchTable3Workers(b, "ssem", 0) }

// Ablation: synthesis cost versus controller size (sequencer width).
func BenchmarkSynthesizeSequencerWidth(b *testing.B) {
	for _, n := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("width%d", n), func(b *testing.B) {
			inner := "(p-to-p active A0)"
			for i := 1; i < n; i++ {
				inner = fmt.Sprintf("(seq (p-to-p active A%d) %s)", i, inner)
			}
			p := mustProgram(b, "seqN",
				fmt.Sprintf("(rep (enc-early (p-to-p passive P) %s))", inner))
			sp, err := CompileCH(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Synthesize(sp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the clustering engine itself on the systolic counter
// netlist (T2 = split + T1 + restore check).
func BenchmarkClusterSystolicCounter(b *testing.B) {
	d, err := DesignByName("systolic-counter")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := d.Control()
		if _, _, err := Optimize(n); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the balsa-c front end on the SSEM source.
func BenchmarkCompileBalsaSSEM(b *testing.B) {
	src, err := designsBalsaSource("ssem")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileBalsa(src, "ssem"); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the cluster state bound (the paper's synthesis-run-time
// knob). Smaller bounds keep more, smaller controllers; the speedup
// shrinks accordingly while the baseline arm is unchanged.
func BenchmarkClusterLimitAblation(b *testing.B) {
	for _, limit := range []int{0, 12, 8} {
		b.Run(fmt.Sprintf("maxStates%d", limit), func(b *testing.B) {
			d, err := DesignByName("stack")
			if err != nil {
				b.Fatal(err)
			}
			opt := &FlowOptions{Cluster: ClusterOptions{MaxStates: limit}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := RunDesign(d, opt)
				if err != nil {
					b.Fatal(err)
				}
				if r.SpeedImprovement() <= 0 {
					b.Fatalf("limit %d: no improvement", limit)
				}
				b.ReportMetric(r.SpeedImprovement(), "speedup%")
				b.ReportMetric(float64(len(r.Opt.Controllers)), "clusters")
			}
		})
	}
}

// Ablation: the control-vs-datapath domination effect the paper uses to
// explain Table 3's spread ("if the circuit is control dominated then
// larger improvements can be expected"). Widening the stack's datapath
// while keeping the identical control must shrink the percentage gain.
func BenchmarkControlDominationAblation(b *testing.B) {
	for _, w := range []int{4, 8, 32} {
		b.Run(fmt.Sprintf("width%d", w), func(b *testing.B) {
			d := designsStackWithWidth(fmt.Sprintf("stack-w%d", w), w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := RunDesign(d, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.SpeedImprovement(), "speedup%")
			}
		})
	}
}

// Package balsabm is a Go reproduction of "A Burst-Mode Oriented
// Back-End for the Balsa Synthesis System" (Chelcea, Bardsley, Edwards,
// Nowick — DATE 2002): a complete asynchronous-synthesis back-end that
//
//   - compiles a Balsa-subset hardware description into a handshake
//     component netlist (the balsa-c step),
//   - models every control component in the CH channel language,
//   - optimizes the control network by clustering (activation channel
//     removal and call distribution),
//   - compiles the clustered controllers into Burst-Mode specifications,
//   - synthesizes them into hazard-free two-level logic (a Minimalist
//     substitute built on Nowick–Dill hazard-free minimization),
//   - technology-maps them onto a 0.35µm-class cell library with
//     hazard-non-increasing transformations only, and
//   - simulates complete designs (control + behavioral datapath) with an
//     event-driven gate-level simulator to reproduce the paper's
//     Table 3.
//
// The clustering optimizations are formally verified with a
// trace-theory checker (compose + hide + conformance over Petri-net
// semantics), mechanizing the paper's Section 4.3 experiment.
//
// This facade re-exports the main entry points; the implementation
// lives in the internal packages (see DESIGN.md for the system map).
package balsabm

import (
	"context"

	"balsabm/internal/balsa"
	"balsabm/internal/bm"
	"balsabm/internal/cell"
	"balsabm/internal/ch"
	"balsabm/internal/chtobm"
	"balsabm/internal/core"
	"balsabm/internal/designs"
	"balsabm/internal/flow"
	"balsabm/internal/gates"
	"balsabm/internal/hc"
	"balsabm/internal/minimalist"
	"balsabm/internal/techmap"
)

// Re-exported core types.
type (
	// CHProgram is a named CH program describing one controller.
	CHProgram = ch.Program
	// BMSpec is a Burst-Mode controller specification.
	BMSpec = bm.Spec
	// ControlNetlist is a network of control components (CH programs).
	ControlNetlist = core.Netlist
	// ClusterReport describes what the clustering optimizations did.
	ClusterReport = core.Report
	// Controller is a synthesized controller: hazard-free covers for
	// every output and state variable.
	Controller = minimalist.Controller
	// GateNetlist is a mapped gate-level netlist.
	GateNetlist = gates.Netlist
	// Library is a standard-cell library.
	Library = cell.Library
	// HCNetlist is a handshake-component netlist (balsa-c output).
	HCNetlist = hc.Netlist
	// Design is a complete benchmark design (control + datapath +
	// benchmark environment).
	Design = designs.Design
	// DesignResult is one Table 3 row.
	DesignResult = flow.DesignResult
	// FlowOptions tunes the end-to-end flow.
	FlowOptions = flow.Options
	// FlowMetrics collects synthesis-cache and stage-timing counters
	// across a flow run (set FlowOptions.Metrics to observe one).
	FlowMetrics = flow.Metrics
)

// Mapping modes (see package techmap).
const (
	// MapSpeedSplit is the paper's optimized-controller mapping:
	// single-output NAND-NAND logic, the two levels mapped separately.
	MapSpeedSplit = techmap.SpeedSplit
	// MapAreaShared is the baseline mapping with shared products and
	// C-element peepholes.
	MapAreaShared = techmap.AreaShared
)

// ParseCH parses a CH expression (Section 3 concrete syntax).
func ParseCH(src string) (ch.Expr, error) { return ch.Parse(src) }

// ParseCHProgram parses a named CH program: (program name expr).
func ParseCHProgram(src string) (*CHProgram, error) { return ch.ParseProgram(src) }

// ValidateCH checks the Burst-Mode aware restrictions (Table 1).
func ValidateCH(e ch.Expr) error { return ch.Validate(e) }

// CompileCH translates a CH program into a Burst-Mode specification
// (the CH-to-BMS algorithm of Section 3.6), including the final
// well-formedness check.
func CompileCH(p *CHProgram) (*BMSpec, error) { return chtobm.Compile(p) }

// Optimize runs the clustering optimizations of Section 4 (call
// distribution, which subsumes activation channel removal) on a control
// netlist, returning the clustered netlist and a report.
func Optimize(n *ControlNetlist) (*ControlNetlist, *ClusterReport, error) {
	return core.Optimize(n)
}

// VerifyActivationChannelRemoval reruns the Section 4.3 trace-theory
// verification for one activating/activated component pair.
func VerifyActivationChannelRemoval(channel string, x, y *CHProgram) error {
	return core.VerifyActivationChannelRemoval(channel, x, y)
}

// Synthesize turns a Burst-Mode specification into hazard-free
// two-level logic (the Minimalist step).
func Synthesize(sp *BMSpec) (*Controller, error) { return minimalist.Synthesize(sp) }

// Map technology-maps a synthesized controller.
func Map(ctrl *Controller, mode techmap.Mode, lib *Library) (*GateNetlist, error) {
	return techmap.MapController(ctrl, mode, lib)
}

// AuditMapped verifies a speed-split-mapped controller implements its
// hazard-free covers exactly (the Section 5 hazard-freedom argument).
func AuditMapped(ctrl *Controller, nl *GateNetlist, lib *Library) error {
	return techmap.CheckMapped(ctrl, nl, lib)
}

// DefaultLibrary returns the bundled 0.35µm-class cell library.
func DefaultLibrary() *Library { return cell.AMS035() }

// CompileBalsa compiles Balsa-subset source text into a handshake
// component netlist (the balsa-c step of Fig 1).
func CompileBalsa(src, designName string) (*HCNetlist, error) {
	return balsa.CompileSource(src, designName)
}

// Designs returns the paper's four benchmark designs (Table 3).
func Designs() []*Design { return designs.All() }

// DesignByName finds a benchmark design by its Table 3 name.
func DesignByName(name string) (*Design, error) { return designs.ByName(name) }

// BalsaDesigns returns the four designs compiled from their Balsa
// sources instead of the hand-built netlists.
func BalsaDesigns() ([]*Design, error) { return designs.AllBalsa() }

// RunDesign executes the full back-end on one design: both arms
// (unoptimized baseline and clustered/speed-mapped), each synthesized,
// mapped, audited and simulated against the paper's benchmark.
func RunDesign(d *Design, opt *FlowOptions) (*DesignResult, error) {
	return flow.RunDesign(d, opt)
}

// RunDesignCtx is RunDesign with cancellation: the run stops cleanly
// at the next leaf boundary when ctx is cancelled.
func RunDesignCtx(ctx context.Context, d *Design, opt *FlowOptions) (*DesignResult, error) {
	return flow.RunDesignCtx(ctx, d, opt)
}

// RunAll executes the flow on all four designs.
func RunAll(opt *FlowOptions) ([]*DesignResult, error) { return flow.RunAll(opt) }

// RunAllCtx is RunAll with cancellation (see RunDesignCtx).
func RunAllCtx(ctx context.Context, opt *FlowOptions) ([]*DesignResult, error) {
	return flow.RunAllCtx(ctx, opt)
}

// Table3 formats results in the paper's Table 3 layout.
func Table3(results []*DesignResult) string { return flow.Table3(results) }

// designsBalsaSource exposes the embedded Balsa sources (used by the
// benchmarks and examples).
func designsBalsaSource(name string) (string, error) { return designs.BalsaSource(name) }

// BalsaSource returns the embedded Balsa source text of a benchmark
// design ("counter8", "stack", "wagging", "ssem").
func BalsaSource(name string) (string, error) { return designs.BalsaSource(name) }

// ClusterOptions tunes the clustering engine (e.g. MaxStates bounds the
// Burst-Mode state count of any clustered controller).
type ClusterOptions = core.Options

// OptimizeWithOptions is Optimize with tunable clustering limits.
func OptimizeWithOptions(n *ControlNetlist, opt ClusterOptions) (*ControlNetlist, *ClusterReport, error) {
	return core.OptimizeOpt(n, opt)
}

// MinimizeStates merges behaviorally identical (bisimilar) states of a
// Burst-Mode specification — Minimalist's state-minimization step.
func MinimizeStates(sp *BMSpec) (*BMSpec, error) { return minimalist.MinimizeStates(sp) }

// designsStackWithWidth exposes the width-parameterized stack for the
// control-domination ablation.
func designsStackWithWidth(name string, width int) *Design {
	return designs.StackWithWidth(name, width)
}

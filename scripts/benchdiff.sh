#!/usr/bin/env bash
# Compares two scripts/bench.sh JSON outputs and prints per-benchmark
# deltas for ns/op and allocs/op.
#
# Usage: scripts/benchdiff.sh BEFORE.json AFTER.json
#
#   scripts/bench.sh 'BenchmarkTable3' 2x > before.json
#   ... apply the change ...
#   scripts/bench.sh 'BenchmarkTable3' 2x > after.json
#   scripts/benchdiff.sh before.json after.json
#
# A positive "x faster" column means AFTER is faster / allocates less.
# Benchmarks present in only one file are listed but not compared.
set -euo pipefail

if [ "$#" -ne 2 ]; then
  echo "usage: $0 BEFORE.json AFTER.json" >&2
  exit 2
fi

# bench.sh emits one benchmark object per line:
#   {"name":"BenchmarkFoo-8","iterations":2,"metrics":{"ns/op":123,...}}
# so a line-oriented awk extraction is enough; no jq required.
awk '
  function metric(line, key,    re, s) {
    re = "\"" key "\":[0-9.eE+-]+"
    if (match(line, re)) {
      s = substr(line, RSTART, RLENGTH)
      sub(/^[^:]*:/, "", s)
      return s + 0
    }
    return -1
  }
  /"name":/ {
    name = $0
    sub(/.*"name":"/, "", name)
    sub(/".*/, "", name)
    # Strip the -GOMAXPROCS suffix so runs from differently sized
    # machines still pair up.
    sub(/-[0-9]+$/, "", name)
    if (FNR == NR || FILENAME == ARGV[1]) {
      bns[name] = metric($0, "ns\\/op")
      bal[name] = metric($0, "allocs\\/op")
      border[++bn] = name
    } else {
      ans[name] = metric($0, "ns\\/op")
      aal[name] = metric($0, "allocs\\/op")
      if (!(name in bns)) aonly[++an] = name
    }
  }
  function human(ns) {
    if (ns < 0) return "-"
    if (ns >= 1e9) return sprintf("%.2fs", ns / 1e9)
    if (ns >= 1e6) return sprintf("%.1fms", ns / 1e6)
    if (ns >= 1e3) return sprintf("%.1fus", ns / 1e3)
    return sprintf("%.0fns", ns)
  }
  function ratio(before, after) {
    if (before < 0 || after <= 0) return "-"
    return sprintf("%.2fx", before / after)
  }
  END {
    printf "%-44s %10s %10s %8s %12s %12s %8s\n", \
      "benchmark", "ns/op old", "ns/op new", "faster", \
      "allocs old", "allocs new", "fewer"
    for (i = 1; i <= bn; i++) {
      name = border[i]
      if (!(name in ans)) {
        printf "%-44s %10s  (only in BEFORE)\n", name, human(bns[name])
        continue
      }
      printf "%-44s %10s %10s %8s %12d %12d %8s\n", name, \
        human(bns[name]), human(ans[name]), ratio(bns[name], ans[name]), \
        bal[name], aal[name], ratio(bal[name], aal[name])
    }
    for (i = 1; i <= an; i++) {
      name = aonly[i]
      printf "%-44s %10s %10s  (only in AFTER)\n", name, "-", human(ans[name])
    }
  }
' "$1" "$2"

#!/usr/bin/env bash
# Incremental-resynthesis smoke test for the controller-grain cache.
#
# Boots balsabmd, submits a two-controller CH design, edits one
# controller, resubmits with baseJobID, and asserts the edit job
# spliced the unchanged controller from the controller cache:
#
#   balsabmd_incremental_controllers_total{outcome="reused"} >= 1
#
# plus the per-job reuse split echoed in JobStatus. The same edit is
# then run through the CLI (-incremental -base <jobID>) to exercise the
# client path end to end.
#
# Usage: scripts/incremental_smoke.sh [addr]   (default 127.0.0.1:8938)
set -euo pipefail
cd "$(dirname "$0")/.."

addr="${1:-127.0.0.1:8938}"
url="http://$addr"
dir="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o bin/balsabmd ./cmd/balsabmd
go build -o bin/balsabm ./cmd/balsabm

wait_up() {
  for _ in $(seq 1 100); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "incremental_smoke: daemon did not come up on $url" >&2
  return 1
}

# Submit a synth job (optionally with a base job ID) and wait for it;
# prints the terminal JobStatus JSON.
submit_and_wait() {
  local source="$1" base="${2:-}"
  local req="{\"kind\":\"synth\",\"mode\":\"opt\",\"source\":\"$source\""
  [ -n "$base" ] && req="$req,\"baseJobID\":\"$base\""
  req="$req}"
  local id
  id="$(curl -fsS -X POST -d "$req" "$url/api/v1/jobs" |
    sed -n 's/^ *"id": *"\([^"]*\)".*/\1/p')"
  [ -n "$id" ] || { echo "incremental_smoke: submission returned no job ID" >&2; return 1; }
  local st
  for _ in $(seq 1 200); do
    st="$(curl -fsS "$url/api/v1/jobs/$id")"
    case "$st" in
    *'"state": "done"'*) printf '%s\n' "$st"; return 0 ;;
    *'"state": "failed"'*) echo "incremental_smoke: job $id failed: $st" >&2; return 1 ;;
    esac
    sleep 0.1
  done
  echo "incremental_smoke: job $id did not finish: $st" >&2
  return 1
}

base_src='(program ctlA (rep (enc-early (p-to-p passive root) (seq (p-to-p active l1) (p-to-p active l2))))) (program ctlB (rep (enc-late (p-to-p passive go) (seq-ov (p-to-p active x1) (p-to-p active x2)))))'
edit_src='(program ctlA (rep (enc-early (p-to-p passive root) (seq (p-to-p active l1) (p-to-p active l2))))) (program ctlB (rep (enc-middle (p-to-p passive go) (seq-ov (p-to-p active x1) (p-to-p active x2)))))'

bin/balsabmd -addr "$addr" -data-dir "$dir" -jobs 2 &
pid=$!
wait_up

echo "== base job =="
base_st="$(submit_and_wait "$base_src")"
base_id="$(printf '%s' "$base_st" | sed -n 's/^ *"id": *"\([^"]*\)".*/\1/p')"
echo "   base job $base_id done"

echo "== edit job (one controller changed, baseJobID=$base_id) =="
edit_st="$(submit_and_wait "$edit_src" "$base_id")"
case "$edit_st" in
*'"controllersReused": 1'*) echo "   edit job reused 1 controller" ;;
*)
  echo "incremental_smoke: edit job did not report controllersReused=1: $edit_st" >&2
  exit 1
  ;;
esac

echo "== CLI edit loop (-incremental -base $base_id) =="
printf '%s\n' "$edit_src" >"$dir/edit.ch"
bin/balsabm -server "$url" -incremental -base "$base_id" synth "$dir/edit.ch" >/dev/null
echo "   CLI resubmission OK"

metrics="$(curl -fsS "$url/metrics")"
reused="$(printf '%s\n' "$metrics" |
  sed -n 's/^balsabmd_incremental_controllers_total{outcome="reused"} \([0-9]*\)$/\1/p')"
if [ -z "$reused" ] || [ "$reused" -lt 1 ]; then
  echo "incremental_smoke: expected reused >= 1 on /metrics; incremental metrics were:" >&2
  printf '%s\n' "$metrics" | grep balsabmd_incremental >&2 || true
  exit 1
fi
echo "incremental smoke OK: $reused controller(s) served from the controller cache"

#!/usr/bin/env bash
# Runs the benchmark suite and emits a JSON summary on stdout.
#
# Usage: scripts/bench.sh [bench-regex] [benchtime]
#
#   scripts/bench.sh                          # every benchmark, 1 iteration
#   scripts/bench.sh 'BenchmarkTable3' 5x     # Table 3 rows, 5 iterations
#
# Each benchmark becomes one JSON object with its iteration count and
# every reported metric (ns/op, B/op, allocs/op, plus custom metrics
# like speedup%/overhead%).
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${2:-1x}"

raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem .)

printf '{\n  "go": "%s",\n  "benchtime": "%s",\n  "benchmarks": [\n' \
  "$(go env GOVERSION)" "$benchtime"
printf '%s\n' "$raw" | awk '
  /^Benchmark/ {
    line = sep "    {\"name\":\"" $1 "\",\"iterations\":" $2 ",\"metrics\":{"
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/"/, "", unit)
      line = line msep "\"" unit "\":" $i
      msep = ","
    }
    printf "%s", line "}}"
    sep = ",\n"
  }
  END { print "" }
'
printf '  ]\n}\n'

#!/usr/bin/env bash
# Runs the benchmark suite and emits a JSON summary on stdout.
#
# Usage: scripts/bench.sh [bench-regex] [benchtime]
#
#   scripts/bench.sh                          # every benchmark, 1 iteration
#   scripts/bench.sh 'BenchmarkTable3' 5x     # Table 3 rows, 5 iterations
#   scripts/bench.sh 'BenchmarkCheckMapped'   # the mapped-logic audit kernel
#
# BENCH_PKG selects the package(s) to benchmark (default: the root
# package). The kernel micro-benchmarks live under internal/:
#
#   BENCH_PKG='./internal/logic ./internal/hfmin' scripts/bench.sh 'Bench' 1x
#
# Each benchmark becomes one JSON object with its iteration count and
# every reported metric (ns/op, B/op, allocs/op, plus custom metrics
# like speedup%/overhead%).
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${2:-1x}"
pkg="${BENCH_PKG:-.}"

# shellcheck disable=SC2086 # BENCH_PKG is a deliberate word list
raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem $pkg)

printf '{\n  "go": "%s",\n  "benchtime": "%s",\n  "benchmarks": [\n' \
  "$(go env GOVERSION)" "$benchtime"
printf '%s\n' "$raw" | awk '
  /^Benchmark/ {
    line = sep "    {\"name\":\"" $1 "\",\"iterations\":" $2 ",\"metrics\":{"
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/"/, "", unit)
      line = line msep "\"" unit "\":" $i
      msep = ","
    }
    printf "%s", line "}}"
    sep = ",\n"
  }
  END { print "" }
'
printf '  ]\n}\n'

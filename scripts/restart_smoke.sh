#!/usr/bin/env bash
# Restart-survival smoke test for the durable job store.
#
# Boots balsabmd with a data dir, runs the four Table 3 designs through
# the thin client, SIGTERMs the daemon, boots a fresh one on the same
# data dir, reruns the four designs and asserts every one is served
# from the on-disk artifact cache:
#
#   balsabmd_store_hits_total{tier="disk"} 4
#
# Usage: scripts/restart_smoke.sh [addr]   (default 127.0.0.1:8937)
set -euo pipefail
cd "$(dirname "$0")/.."

addr="${1:-127.0.0.1:8937}"
url="http://$addr"
dir="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o bin/balsabmd ./cmd/balsabmd
go build -o bin/balsabm ./cmd/balsabm

wait_up() {
  for _ in $(seq 1 100); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "restart_smoke: daemon did not come up on $url" >&2
  return 1
}

designs="systolic-counter wagging-register stack ssem"

echo "== first daemon lifetime (cold: full flow runs) =="
bin/balsabmd -addr "$addr" -data-dir "$dir" -jobs 2 &
pid=$!
wait_up
for d in $designs; do
  bin/balsabm -server "$url" flow "$d" >/dev/null
  echo "   ran $d"
done
kill -TERM "$pid"
wait "$pid" || true
pid=""

echo "== second daemon lifetime (warm: artifact-cache hits) =="
bin/balsabmd -addr "$addr" -data-dir "$dir" -jobs 2 &
pid=$!
wait_up
for d in $designs; do
  bin/balsabm -server "$url" flow "$d" >/dev/null
  echo "   reran $d"
done
metrics="$(curl -fsS "$url/metrics")"
kill -TERM "$pid"
wait "$pid" || true
pid=""

if ! printf '%s\n' "$metrics" | grep -qF 'balsabmd_store_hits_total{tier="disk"} 4'; then
  echo "restart_smoke: expected 4 disk-tier hits after restart; store metrics were:" >&2
  printf '%s\n' "$metrics" | grep balsabmd_store >&2 || true
  exit 1
fi
echo "restart smoke OK: all 4 designs served from the artifact cache after restart"
